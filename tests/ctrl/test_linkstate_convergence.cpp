// Randomized convergence property: over seeded Waxman graphs with
// scripted churn (sever / degrade / heal), after a quiet period every
// router's SPF view agrees with the centralized Topology oracle run on
// the surviving graph — same reachability, same distances. Seeds are
// logged so a failure reproduces with a single-seed run.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <variant>
#include <vector>

#include "ctrl/linkstate.hpp"
#include "ctrl/topology.hpp"
#include "des/simulator.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/rng.hpp"
#include "qhw/params.hpp"

namespace qnetp::ctrl {
namespace {

using namespace qnetp::literals;

LinkStateConfig fast_config() {
  LinkStateConfig c;
  c.refresh_interval = 50_ms;
  c.max_age = 160_ms;
  c.age_sweep_interval = 20_ms;
  return c;
}

/// Distributed side: one LinkStateRouter per node over ideal channels,
/// fed from a shared mutable adjacency. Centralized side: a Topology
/// oracle kept in lockstep through set_link_up / set_link_cost.
class ConvergenceRig {
 public:
  explicit ConvergenceRig(const netsim::TopologySpec& spec) {
    for (const auto& n : spec.nodes) {
      oracle.add_node(n.id);
      auto router = std::make_unique<LinkStateRouter>(sim, n.id, fast_config());
      const NodeId id = n.id;
      router->set_send([this, id](NodeId to, const netmsg::Message& m) {
        const auto* lsa = std::get_if<netmsg::LsaMsg>(&m);
        ASSERT_NE(lsa, nullptr);
        if (severed_.count(ordered(id, to)) != 0) return;
        sim.schedule(10_us, [this, id, to, msg = *lsa] {
          const auto it = routers_.find(to);
          if (it != routers_.end()) it->second->on_message(id, msg);
        });
      });
      router->set_local_links([this, id] { return adj_[id]; });
      routers_[id] = std::move(router);
    }
    std::uint64_t next_link = 1;
    for (const auto& l : spec.links) {
      const LinkId id{next_link++};
      oracle.add_link(TopologyLink{
          id, l.a, l.b,
          qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                 qhw::FiberParams::lab(2.0)),
          1.0});
      link_ends_[id] = {l.a, l.b};
      add_adjacency(id, l.a, l.b, 1.0);
    }
    for (auto& [id, r] : routers_) r->start();
  }

  des::Simulator sim;
  Topology oracle;

  std::vector<LinkId> link_ids() const {
    std::vector<LinkId> out;
    for (const auto& [id, ends] : link_ends_) out.push_back(id);
    return out;
  }

  bool is_severed(LinkId id) const {
    const auto& [a, b] = link_ends_.at(id);
    return severed_.count(ordered(a, b)) != 0;
  }

  /// True if taking `id` down keeps every surviving node pair connected
  /// (checked on the oracle, transactionally).
  bool severable(LinkId id) {
    if (is_severed(id)) return false;
    oracle.set_link_up(id, false);
    const bool ok = oracle_connected();
    oracle.set_link_up(id, true);
    return ok;
  }

  void sever(LinkId id) {
    const auto& [a, b] = link_ends_.at(id);
    remove_adjacency(a, b);
    severed_.insert(ordered(a, b));
    oracle.set_link_up(id, false);
    routers_.at(a)->originate();
    routers_.at(b)->originate();
  }

  void heal(LinkId id) {
    const auto& [a, b] = link_ends_.at(id);
    severed_.erase(ordered(a, b));
    add_adjacency(id, a, b, oracle.link(id)->cost);
    oracle.set_link_up(id, true);
    routers_.at(a)->originate();
    routers_.at(b)->originate();
  }

  void degrade(LinkId id, double cost) {
    const auto& [a, b] = link_ends_.at(id);
    for (auto& l : adj_[a]) {
      if (l.link == id) l.cost = cost;
    }
    for (auto& l : adj_[b]) {
      if (l.link == id) l.cost = cost;
    }
    oracle.set_link_cost(id, cost);
    if (severed_.count(ordered(a, b)) == 0) {
      routers_.at(a)->originate();
      routers_.at(b)->originate();
    }
  }

  void run(Duration d) { sim.run_until(sim.now() + d); }

  /// Every router's distance table equals the oracle's, for all pairs.
  void expect_converged(std::uint64_t seed) {
    for (const auto& [from, router] : routers_) {
      for (const auto& [to, unused] : routers_) {
        if (from == to) continue;
        const auto want = oracle.shortest_path(from, to);
        const auto got = router->distance_to(to);
        if (!want.has_value()) {
          EXPECT_FALSE(got.has_value())
              << "seed " << seed << ": router " << from.value()
              << " reaches " << to.value() << " but the oracle does not";
          continue;
        }
        ASSERT_TRUE(got.has_value())
            << "seed " << seed << ": router " << from.value()
            << " cannot reach " << to.value() << " but the oracle can";
        EXPECT_NEAR(*got, oracle.path_cost(*want), 1e-9)
            << "seed " << seed << ": distance mismatch " << from.value()
            << " -> " << to.value();
      }
    }
  }

 private:
  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return (a.value() < b.value()) ? std::make_pair(a, b)
                                   : std::make_pair(b, a);
  }

  bool oracle_connected() {
    const NodeId first = routers_.begin()->first;
    for (const auto& [id, r] : routers_) {
      if (id == first) continue;
      if (!oracle.shortest_path(first, id).has_value()) return false;
    }
    return true;
  }

  void add_adjacency(LinkId id, NodeId a, NodeId b, double cost) {
    netmsg::LsaLink fwd;
    fwd.neighbour = b;
    fwd.link = id;
    fwd.cost = cost;
    netmsg::LsaLink back = fwd;
    back.neighbour = a;
    adj_[a].push_back(fwd);
    adj_[b].push_back(back);
  }

  void remove_adjacency(NodeId a, NodeId b) {
    std::erase_if(adj_[a], [&](const netmsg::LsaLink& l) {
      return l.neighbour == b;
    });
    std::erase_if(adj_[b], [&](const netmsg::LsaLink& l) {
      return l.neighbour == a;
    });
  }

  std::map<NodeId, std::unique_ptr<LinkStateRouter>> routers_;
  std::map<NodeId, std::vector<netmsg::LsaLink>> adj_;
  std::map<LinkId, std::pair<NodeId, NodeId>> link_ends_;
  std::set<std::pair<NodeId, NodeId>> severed_;
};

/// One randomized trial: Waxman graph from `seed`, a scripted event
/// sequence drawn from the same seed, a quiet period, then the full
/// all-pairs oracle comparison.
void run_trial(std::uint64_t seed) {
  netsim::WaxmanParams params;
  params.nodes = 12;
  const auto spec = netsim::TopologySpec::waxman(
      seed, params, qhw::simulation_preset());
  ConvergenceRig rig(spec);
  rig.run(40_ms);  // initial flood settles
  rig.expect_converged(seed);

  Rng rng(seed ^ 0xC0FFEEull);
  const auto links = rig.link_ids();
  std::vector<LinkId> downed;
  const int n_events = 3 + static_cast<int>(rng.uniform_int(4));
  for (int e = 0; e < n_events; ++e) {
    const std::uint64_t roll = rng.uniform_int(4);
    const LinkId pick = links[rng.uniform_int(links.size())];
    if (roll == 0 && !downed.empty()) {
      // Heal the oldest casualty.
      rig.heal(downed.front());
      downed.erase(downed.begin());
    } else if (roll <= 1) {
      if (rig.severable(pick)) {
        rig.sever(pick);
        downed.push_back(pick);
      }
    } else {
      rig.degrade(pick, 1.0 + rng.uniform(0.0, 8.0));
    }
    rig.run(5_ms);  // events overlap in flight
  }

  rig.run(60_ms);  // quiet period: all floods and SPF reruns settle
  rig.expect_converged(seed);
}

TEST(LinkStateConvergence, MatchesOracleOverSeededWaxmanChurn) {
  constexpr std::uint64_t kBaseSeed = 7100;
  constexpr int kSeeds = 60;
  for (int i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    std::printf("[convergence] seed %llu\n",
                static_cast<unsigned long long>(seed));
    run_trial(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace qnetp::ctrl
