#include "ctrl/rate_model.hpp"

#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::ctrl {
namespace {

using namespace qnetp::literals;

TEST(RateModel, SingleLinkMatchesGeometricMean) {
  Rng rng(1);
  ChainRateInputs in;
  in.success_prob = {0.01};
  in.attempt_cycle = 10_us;
  in.cutoff = 1_s;
  const auto est = estimate_chain_rate(in, 4000, rng);
  // One link: mean time = cycle / p.
  EXPECT_NEAR(est.mean_time.as_ms(), 1.0, 0.1);
  EXPECT_NEAR(est.rate_per_s, 1000.0, 100.0);
  EXPECT_DOUBLE_EQ(est.discard_ratio, 0.0);
}

TEST(RateModel, TwoLinksSlowerThanOne) {
  Rng rng(2);
  ChainRateInputs one;
  one.success_prob = {0.01};
  one.attempt_cycle = 10_us;
  one.cutoff = 100_ms;
  ChainRateInputs two = one;
  two.success_prob = {0.01, 0.01};
  const auto e1 = estimate_chain_rate(one, 3000, rng);
  const auto e2 = estimate_chain_rate(two, 3000, rng);
  // Two parallel links, max of two geometrics: 1.5x the single-link time
  // when the cutoff is generous.
  EXPECT_GT(e2.mean_time, e1.mean_time * 1.3);
  EXPECT_LT(e2.mean_time, e1.mean_time * 2.0);
}

TEST(RateModel, TightCutoffCausesDiscardsAndSlowdown) {
  Rng rng(3);
  ChainRateInputs in;
  in.success_prob = {0.01, 0.01};
  in.attempt_cycle = 10_us;
  in.cutoff = 1_ms;  // equal to the mean generation time: tight
  const auto tight = estimate_chain_rate(in, 2000, rng);
  in.cutoff = 100_ms;
  const auto loose = estimate_chain_rate(in, 2000, rng);
  EXPECT_GT(tight.discard_ratio, 0.2);
  EXPECT_LT(loose.discard_ratio, 0.05);
  EXPECT_GT(tight.mean_time, loose.mean_time);
}

TEST(RateModel, MoreLinksMonotonicallySlower) {
  Rng rng(4);
  Duration prev = Duration::zero();
  for (std::size_t links : {1u, 2u, 3u, 4u, 5u}) {
    ChainRateInputs in;
    in.success_prob.assign(links, 0.02);
    in.attempt_cycle = 10_us;
    in.cutoff = 20_ms;
    const auto est = estimate_chain_rate(in, 1500, rng);
    EXPECT_GT(est.mean_time, prev);
    prev = est.mean_time;
  }
}

TEST(RateModel, AsymmetricChainLimitedByWeakestLink) {
  Rng rng(5);
  ChainRateInputs in;
  in.success_prob = {0.05, 0.002};  // second link 25x slower
  in.attempt_cycle = 10_us;
  in.cutoff = 200_ms;
  const auto est = estimate_chain_rate(in, 1500, rng);
  // The weak link needs ~5 ms per pair; the chain can't beat that.
  EXPECT_GT(est.mean_time.as_ms(), 4.5);
}

TEST(RateModel, CrossValidatesAgainstFullSimulator) {
  // The MC abstraction should predict the full-stack end-to-end rate for
  // a quiet 3-node chain within a factor ~1.6 (it ignores classical
  // latency, device durations and memory contention).
  netsim::NetworkConfig config;
  config.seed = 1234;
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                          EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());
  qnp::AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.num_pairs = 1000000;
  ASSERT_TRUE(
      net->engine(NodeId{1}).submit_request(plan->install.circuit_id, r));
  const Duration horizon = 10_s;
  net->sim().run_until(TimePoint::origin() + horizon);
  const double measured_rate =
      static_cast<double>(probe.pair_count()) / horizon.as_seconds();
  net->sim().stop();

  // Model with the same working point.
  const auto& model = net->egp(NodeId{1}, NodeId{2})->model();
  double alpha = 0.0;
  ASSERT_TRUE(model.solve_alpha(plan->link_fidelity, &alpha));
  Rng rng(6);
  ChainRateInputs in;
  in.success_prob = {model.success_prob(alpha), model.success_prob(alpha)};
  in.attempt_cycle = model.attempt_cycle();
  in.cutoff = plan->cutoff;
  in.swap_duration = qhw::simulation_preset().swap_duration();
  const auto est = estimate_chain_rate(in, 3000, rng);

  EXPECT_GT(measured_rate, est.rate_per_s / 1.6);
  EXPECT_LT(measured_rate, est.rate_per_s * 1.6);
}

TEST(RateModel, InputValidation) {
  Rng rng(7);
  ChainRateInputs bad;
  bad.attempt_cycle = 10_us;
  bad.cutoff = 1_ms;
  EXPECT_THROW(estimate_chain_rate(bad, 10, rng), AssertionError);
  bad.success_prob = {1.5};
  EXPECT_THROW(estimate_chain_rate(bad, 10, rng), AssertionError);
}

}  // namespace
}  // namespace qnetp::ctrl
