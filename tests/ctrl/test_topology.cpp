#include "ctrl/topology.hpp"

#include <gtest/gtest.h>

#include "qbase/assert.hpp"

namespace qnetp::ctrl {
namespace {

TopologyLink make_link(std::uint64_t id, std::uint64_t a, std::uint64_t b,
                       double cost = 1.0) {
  return TopologyLink{LinkId{id}, NodeId{a}, NodeId{b},
                      qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                             qhw::FiberParams::lab(2.0)),
                      cost};
}

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() {
    for (std::uint64_t i = 1; i <= 6; ++i) topo_.add_node(NodeId{i});
    // Dumbbell: 1,2 - 5 - 6 - 3,4
    topo_.add_link(make_link(1, 1, 5));
    topo_.add_link(make_link(2, 2, 5));
    topo_.add_link(make_link(3, 5, 6));
    topo_.add_link(make_link(4, 6, 3));
    topo_.add_link(make_link(5, 6, 4));
  }
  Topology topo_;
};

TEST_F(TopologyTest, BasicQueries) {
  EXPECT_EQ(topo_.node_count(), 6u);
  EXPECT_EQ(topo_.link_count(), 5u);
  EXPECT_TRUE(topo_.has_node(NodeId{3}));
  EXPECT_FALSE(topo_.has_node(NodeId{9}));
  ASSERT_NE(topo_.link_between(NodeId{1}, NodeId{5}), nullptr);
  // Undirected.
  ASSERT_NE(topo_.link_between(NodeId{5}, NodeId{1}), nullptr);
  EXPECT_EQ(topo_.link_between(NodeId{1}, NodeId{2}), nullptr);
  EXPECT_NE(topo_.link(LinkId{3}), nullptr);
  EXPECT_EQ(topo_.link(LinkId{77}), nullptr);
}

TEST_F(TopologyTest, Neighbours) {
  const auto n5 = topo_.neighbours(NodeId{5});
  EXPECT_EQ(n5.size(), 3u);
  const auto n1 = topo_.neighbours(NodeId{1});
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0], NodeId{5});
}

TEST_F(TopologyTest, ShortestPathAcrossBottleneck) {
  const auto path = topo_.shortest_path(NodeId{1}, NodeId{3});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 4u);
  EXPECT_EQ((*path)[0], NodeId{1});
  EXPECT_EQ((*path)[1], NodeId{5});
  EXPECT_EQ((*path)[2], NodeId{6});
  EXPECT_EQ((*path)[3], NodeId{3});
}

TEST_F(TopologyTest, PathToSelf) {
  const auto path = topo_.shortest_path(NodeId{1}, NodeId{1});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST_F(TopologyTest, DisconnectedReturnsNullopt) {
  topo_.add_node(NodeId{10});
  EXPECT_FALSE(topo_.shortest_path(NodeId{1}, NodeId{10}).has_value());
  // Both directions — including starting FROM the isolated node.
  EXPECT_FALSE(topo_.shortest_path(NodeId{10}, NodeId{1}).has_value());
  EXPECT_TRUE(topo_.k_shortest_paths(NodeId{10}, NodeId{1}, 3).empty());
}

TEST(Topology, CostsShiftPathChoice) {
  Topology t;
  for (std::uint64_t i = 1; i <= 4; ++i) t.add_node(NodeId{i});
  // Two routes 1->4: direct expensive link vs 2-hop cheap detour.
  t.add_link(make_link(1, 1, 4, 5.0));
  t.add_link(make_link(2, 1, 2, 1.0));
  t.add_link(make_link(3, 2, 4, 1.0));
  const auto path = t.shortest_path(NodeId{1}, NodeId{4});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // takes the detour
}

TEST(Topology, IndexedLookupsMatchOnLargeGraph) {
  // The pair-key / LinkId indexes must agree with the link list on a
  // graph large enough to make a linear-scan bug visible.
  Topology t;
  const std::uint64_t n = 40;
  for (std::uint64_t i = 1; i <= n; ++i) t.add_node(NodeId{i});
  std::uint64_t id = 1;
  for (std::uint64_t i = 1; i <= n; ++i) {
    for (std::uint64_t j = i + 1; j <= n; j += 7) {
      t.add_link(make_link(id++, i, j));
    }
  }
  for (std::uint64_t i = 1; i <= n; ++i) {
    for (std::uint64_t j = 1; j <= n; ++j) {
      if (i == j) continue;
      const auto* l = t.link_between(NodeId{i}, NodeId{j});
      const bool expected = (i < j && (j - i) % 7 == 1) ||
                            (j < i && (i - j) % 7 == 1);
      EXPECT_EQ(l != nullptr, expected) << i << "-" << j;
      if (l != nullptr) {
        EXPECT_EQ(t.link(l->id), l);  // id index agrees
        EXPECT_TRUE((l->a == NodeId{i} && l->b == NodeId{j}) ||
                    (l->a == NodeId{j} && l->b == NodeId{i}));
      }
    }
  }
  EXPECT_EQ(t.link(LinkId{id}), nullptr);
}

TEST(Topology, DuplicateLinkIdAsserts) {
  Topology t;
  for (std::uint64_t i = 1; i <= 3; ++i) t.add_node(NodeId{i});
  t.add_link(make_link(7, 1, 2));
  EXPECT_THROW(t.add_link(make_link(7, 2, 3)), AssertionError);
}

TEST(Topology, ShortestPathExcludingAvoidsLinksAndNodes) {
  Topology t;
  for (std::uint64_t i = 1; i <= 4; ++i) t.add_node(NodeId{i});
  t.add_link(make_link(1, 1, 2));
  t.add_link(make_link(2, 2, 4));
  t.add_link(make_link(3, 1, 3));
  t.add_link(make_link(4, 3, 4));
  const std::unordered_set<LinkId> no_links;
  const std::unordered_set<NodeId> no_nodes;

  // Excluding the 1-2 link forces the 1-3-4 route.
  const auto detour = t.shortest_path_excluding(
      NodeId{1}, NodeId{4}, std::unordered_set<LinkId>{LinkId{1}},
      no_nodes);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ((*detour)[1], NodeId{3});

  // Excluding node 2 does the same; excluding both transit nodes
  // disconnects.
  const auto via3 = t.shortest_path_excluding(
      NodeId{1}, NodeId{4}, no_links,
      std::unordered_set<NodeId>{NodeId{2}});
  ASSERT_TRUE(via3.has_value());
  EXPECT_EQ((*via3)[1], NodeId{3});
  EXPECT_FALSE(t.shortest_path_excluding(
                    NodeId{1}, NodeId{4}, no_links,
                    std::unordered_set<NodeId>{NodeId{2}, NodeId{3}})
                   .has_value());
}

TEST(Topology, KShortestPathsEnumeratesDistinctLooplessPaths) {
  // Diamond with a long tail route: 1-2-4 (cost 2), 1-3-4 (cost 2.5),
  // 1-5-6-4 (cost 3).
  Topology t;
  for (std::uint64_t i = 1; i <= 6; ++i) t.add_node(NodeId{i});
  t.add_link(make_link(1, 1, 2, 1.0));
  t.add_link(make_link(2, 2, 4, 1.0));
  t.add_link(make_link(3, 1, 3, 1.0));
  t.add_link(make_link(4, 3, 4, 1.5));
  t.add_link(make_link(5, 1, 5, 1.0));
  t.add_link(make_link(6, 5, 6, 1.0));
  t.add_link(make_link(7, 6, 4, 1.0));

  const auto paths = t.k_shortest_paths(NodeId{1}, NodeId{4}, 5);
  ASSERT_EQ(paths.size(), 3u);  // only 3 loopless paths exist
  EXPECT_EQ(paths[0],
            (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{4}}));
  EXPECT_EQ(paths[1],
            (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}}));
  EXPECT_EQ(paths[2], (std::vector<NodeId>{NodeId{1}, NodeId{5}, NodeId{6},
                                           NodeId{4}}));
  // Non-decreasing cost, and paths[0] is the Dijkstra path.
  EXPECT_LE(t.path_cost(paths[0]), t.path_cost(paths[1]));
  EXPECT_LE(t.path_cost(paths[1]), t.path_cost(paths[2]));
  EXPECT_EQ(paths[0], *t.shortest_path(NodeId{1}, NodeId{4}));

  // k=1 returns just the shortest; disconnected returns empty.
  EXPECT_EQ(t.k_shortest_paths(NodeId{1}, NodeId{4}, 1).size(), 1u);
  t.add_node(NodeId{9});
  EXPECT_TRUE(t.k_shortest_paths(NodeId{1}, NodeId{9}, 3).empty());
}

TEST(Topology, DuplicateNodeOrLinkAsserts) {
  Topology t;
  t.add_node(NodeId{1});
  EXPECT_THROW(t.add_node(NodeId{1}), AssertionError);
  t.add_node(NodeId{2});
  t.add_link(make_link(1, 1, 2));
  EXPECT_THROW(t.add_link(make_link(2, 2, 1)), AssertionError);
}

TEST(Topology, SelfLoopAsserts) {
  Topology t;
  t.add_node(NodeId{1});
  EXPECT_THROW(t.add_link(make_link(1, 1, 1)), AssertionError);
}

}  // namespace
}  // namespace qnetp::ctrl
