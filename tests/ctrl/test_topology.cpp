#include "ctrl/topology.hpp"

#include <gtest/gtest.h>

#include "qbase/assert.hpp"

namespace qnetp::ctrl {
namespace {

TopologyLink make_link(std::uint64_t id, std::uint64_t a, std::uint64_t b,
                       double cost = 1.0) {
  return TopologyLink{LinkId{id}, NodeId{a}, NodeId{b},
                      qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                             qhw::FiberParams::lab(2.0)),
                      cost};
}

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() {
    for (std::uint64_t i = 1; i <= 6; ++i) topo_.add_node(NodeId{i});
    // Dumbbell: 1,2 - 5 - 6 - 3,4
    topo_.add_link(make_link(1, 1, 5));
    topo_.add_link(make_link(2, 2, 5));
    topo_.add_link(make_link(3, 5, 6));
    topo_.add_link(make_link(4, 6, 3));
    topo_.add_link(make_link(5, 6, 4));
  }
  Topology topo_;
};

TEST_F(TopologyTest, BasicQueries) {
  EXPECT_EQ(topo_.node_count(), 6u);
  EXPECT_EQ(topo_.link_count(), 5u);
  EXPECT_TRUE(topo_.has_node(NodeId{3}));
  EXPECT_FALSE(topo_.has_node(NodeId{9}));
  ASSERT_NE(topo_.link_between(NodeId{1}, NodeId{5}), nullptr);
  // Undirected.
  ASSERT_NE(topo_.link_between(NodeId{5}, NodeId{1}), nullptr);
  EXPECT_EQ(topo_.link_between(NodeId{1}, NodeId{2}), nullptr);
  EXPECT_NE(topo_.link(LinkId{3}), nullptr);
  EXPECT_EQ(topo_.link(LinkId{77}), nullptr);
}

TEST_F(TopologyTest, Neighbours) {
  const auto n5 = topo_.neighbours(NodeId{5});
  EXPECT_EQ(n5.size(), 3u);
  const auto n1 = topo_.neighbours(NodeId{1});
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0], NodeId{5});
}

TEST_F(TopologyTest, ShortestPathAcrossBottleneck) {
  const auto path = topo_.shortest_path(NodeId{1}, NodeId{3});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 4u);
  EXPECT_EQ((*path)[0], NodeId{1});
  EXPECT_EQ((*path)[1], NodeId{5});
  EXPECT_EQ((*path)[2], NodeId{6});
  EXPECT_EQ((*path)[3], NodeId{3});
}

TEST_F(TopologyTest, PathToSelf) {
  const auto path = topo_.shortest_path(NodeId{1}, NodeId{1});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST_F(TopologyTest, DisconnectedReturnsNullopt) {
  topo_.add_node(NodeId{10});
  EXPECT_FALSE(topo_.shortest_path(NodeId{1}, NodeId{10}).has_value());
}

TEST(Topology, CostsShiftPathChoice) {
  Topology t;
  for (std::uint64_t i = 1; i <= 4; ++i) t.add_node(NodeId{i});
  // Two routes 1->4: direct expensive link vs 2-hop cheap detour.
  t.add_link(make_link(1, 1, 4, 5.0));
  t.add_link(make_link(2, 1, 2, 1.0));
  t.add_link(make_link(3, 2, 4, 1.0));
  const auto path = t.shortest_path(NodeId{1}, NodeId{4});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // takes the detour
}

TEST(Topology, DuplicateNodeOrLinkAsserts) {
  Topology t;
  t.add_node(NodeId{1});
  EXPECT_THROW(t.add_node(NodeId{1}), AssertionError);
  t.add_node(NodeId{2});
  t.add_link(make_link(1, 1, 2));
  EXPECT_THROW(t.add_link(make_link(2, 2, 1)), AssertionError);
}

TEST(Topology, SelfLoopAsserts) {
  Topology t;
  t.add_node(NodeId{1});
  EXPECT_THROW(t.add_link(make_link(1, 1, 1)), AssertionError);
}

}  // namespace
}  // namespace qnetp::ctrl
