// ShardedSimulator: conservative windows, canonical mailbox merge,
// lookahead enforcement, stop/resume and worker thread plumbing.
#include "des/sharded.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "qbase/assert.hpp"
#include "qbase/units.hpp"

namespace qnetp::des {
namespace {

using namespace qnetp::literals;

TEST(Sharded, SingleShardPassthrough) {
  ShardedSimulator ssim(1);
  std::vector<int> order;
  ssim.shard(0).schedule(2_ms, [&] { order.push_back(2); });
  ssim.shard(0).schedule(1_ms, [&] { order.push_back(1); });
  const auto ran = ssim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(ssim.now(), TimePoint::origin() + 5_ms);
  EXPECT_EQ(ssim.events_executed(), 2u);
}

TEST(Sharded, EmptyRunAdvancesToHorizon) {
  ShardedSimulator ssim(2);
  ssim.set_lookahead(1_ms);
  ssim.run_until(TimePoint::origin() + 7_ms);
  EXPECT_EQ(ssim.now(), TimePoint::origin() + 7_ms);
  EXPECT_EQ(ssim.shard(0).now(), TimePoint::origin() + 7_ms);
  EXPECT_EQ(ssim.shard(1).now(), TimePoint::origin() + 7_ms);
}

TEST(Sharded, MailboxCountsAsPendingUntilInjected) {
  ShardedSimulator ssim(2);
  ssim.set_lookahead(1_ms);
  bool ran = false;
  ssim.post(0, 1, TimePoint::origin() + 2_ms, 0, 0, [&] { ran = true; });
  EXPECT_EQ(ssim.events_pending(), 1u);
  ssim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_TRUE(ran);
  EXPECT_EQ(ssim.events_pending(), 0u);
}

TEST(Sharded, MailboxMergeOrderIsCanonical) {
  // Envelopes injected into one destination at the same instant must
  // execute in (key_hi, key_lo, src, seq) order no matter the order the
  // posts were made in.
  ShardedSimulator ssim(3);
  ssim.set_lookahead(1_ms);
  std::vector<int> order;
  const TimePoint at = TimePoint::origin() + 2_ms;
  ssim.post(1, 0, at, /*key_hi=*/9, /*key_lo=*/1, [&] { order.push_back(4); });
  ssim.post(1, 0, at, /*key_hi=*/2, /*key_lo=*/7, [&] { order.push_back(2); });
  ssim.post(2, 0, at, /*key_hi=*/2, /*key_lo=*/7, [&] { order.push_back(3); });
  ssim.post(2, 0, at, /*key_hi=*/1, /*key_lo=*/5, [&] { order.push_back(1); });
  // Same key + src: per-mailbox sequence breaks the tie in post order.
  ssim.post(1, 0, at, /*key_hi=*/9, /*key_lo=*/1, [&] { order.push_back(5); });
  ssim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Sharded, CrossShardPingPongMatchesSingleShard) {
  // The same logical program — a message bouncing between two parties
  // with 300 us latency — must produce identical event timestamps when
  // the parties share one shard and when they are split across two.
  const auto run_program = [](std::size_t shards) {
    ShardedSimulator ssim(shards);
    ssim.set_lookahead(100_us);
    const std::size_t a = 0;
    const std::size_t b = shards > 1 ? 1 : 0;
    std::vector<TimePoint> hits;  // solo windows: driver thread only
    struct Bounce {
      ShardedSimulator* ssim;
      std::vector<TimePoint>* hits;
      std::size_t from, to;
      int remaining;
      void operator()() const {
        const Simulator* self = ShardedSimulator::executing();
        ASSERT_NE(self, nullptr);
        const TimePoint now = self->now();
        hits->push_back(now);
        if (remaining <= 0) return;
        Bounce next{ssim, hits, to, from, remaining - 1};
        if (from != to) {
          // Cross-shard: through the timestamped mailbox, as the
          // classical fabric does.
          ssim->post(from, to, now + 300_us, 1, 1, std::move(next));
        } else {
          ssim->shard(to).schedule_at(now + 300_us, std::move(next));
        }
      }
    };
    ssim.shard(a).schedule(100_us,
                           Bounce{&ssim, &hits, a, b, /*remaining=*/8});
    ssim.run_until(TimePoint::origin() + 10_ms);
    return hits;
  };
  const auto one = run_program(1);
  const auto two = run_program(2);
  EXPECT_EQ(one.size(), 9u);
  EXPECT_EQ(one, two);
}

TEST(Sharded, PostInsideWindowMustRespectLookahead) {
  ShardedSimulator ssim(2);
  ssim.set_lookahead(1_ms);
  ssim.shard(0).schedule(1_ms, [&] {
    // Arrival before the window end (now + lookahead) breaks the
    // conservative contract and must be rejected loudly.
    ssim.post(0, 1, ssim.shard(0).now() + 10_us, 0, 0, [] {});
  });
  EXPECT_THROW(ssim.run_until(TimePoint::origin() + 5_ms), AssertionError);
}

TEST(Sharded, PostFromForeignShardAsserts) {
  ShardedSimulator ssim(2);
  ssim.set_lookahead(1_ms);
  ssim.shard(0).schedule(1_ms, [&] {
    // The executing shard is 0; claiming the envelope originates from
    // shard 1 would let two threads write one mailbox.
    ssim.post(1, 0, ssim.shard(0).now() + 10_ms, 0, 0, [] {});
  });
  EXPECT_THROW(ssim.run_until(TimePoint::origin() + 5_ms), AssertionError);
}

TEST(Sharded, StopFromEventHaltsAndResumes) {
  ShardedSimulator ssim(2);
  ssim.set_lookahead(1_ms);
  std::vector<int> ran;  // all events live on shard 0: driver thread
  ssim.shard(0).schedule(1_ms, [&] {
    ran.push_back(1);
    ssim.stop();
  });
  ssim.shard(0).schedule(40_ms, [&] { ran.push_back(2); });
  ssim.run_until(TimePoint::origin() + 50_ms);
  EXPECT_EQ(ran, (std::vector<int>{1}));
  EXPECT_EQ(ssim.events_pending(), 1u);
  EXPECT_LT(ssim.now(), TimePoint::origin() + 50_ms);

  // A fresh run_until clears the stop and finishes the remaining work.
  ssim.run_until(TimePoint::origin() + 50_ms);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(ssim.now(), TimePoint::origin() + 50_ms);
}

TEST(Sharded, ThreadInitRunsOncePerWorker) {
  ShardedSimulator ssim(3);
  ssim.set_lookahead(1_ms);
  std::mutex mu;
  std::vector<std::size_t> inited;
  ssim.set_thread_init([&](std::size_t shard) {
    std::lock_guard<std::mutex> lk(mu);
    inited.push_back(shard);
  });
  // Give every shard work at the same instant so the barrier path (which
  // spawns the workers) is exercised.
  for (std::size_t i = 0; i < 3; ++i) {
    ssim.shard(i).schedule(1_ms, [] {});
    ssim.shard(i).schedule(2_ms, [] {});
  }
  ssim.run_until(TimePoint::origin() + 5_ms);
  ssim.run_until(TimePoint::origin() + 6_ms);  // no re-init on later runs
  std::lock_guard<std::mutex> lk(mu);
  std::sort(inited.begin(), inited.end());
  // Shard 0 runs on the driver thread; only workers 1 and 2 init.
  EXPECT_EQ(inited, (std::vector<std::size_t>{1, 2}));
}

TEST(Sharded, ExecutedCountInvariantAcrossShardCounts) {
  const auto run_program = [](std::size_t shards) {
    ShardedSimulator ssim(shards);
    ssim.set_lookahead(1_ms);
    for (std::size_t s = 0; s < shards; ++s) {
      for (int i = 0; i < 5; ++i) {
        ssim.shard(s).schedule(Duration::ms(1 + i), [] {});
      }
    }
    ssim.run_until(TimePoint::origin() + 10_ms);
    return ssim.events_executed();
  };
  EXPECT_EQ(run_program(1) * 4, run_program(4));  // 5 events per shard
}

}  // namespace
}  // namespace qnetp::des
