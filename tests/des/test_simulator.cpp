#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "qbase/rng.hpp"

namespace qnetp::des {
namespace {

using namespace qnetp::literals;

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3_ms, [&] { order.push_back(3); });
  sim.schedule(1_ms, [&] { order.push_back(1); });
  sim.schedule(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 3_ms);
}

TEST(Simulator, FifoTieBreakAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1_ms, [&] {
    times.push_back(sim.now().as_ms());
    sim.schedule(1_ms, [&] { times.push_back(sim.now().as_ms()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool ran = false;
  sim.schedule(1_ms, [&] {
    sim.schedule(Duration::zero(), [&] {
      ran = true;
      EXPECT_DOUBLE_EQ(sim.now().as_ms(), 1.0);
    });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingIntoThePastAsserts) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1_ms, [] {}), AssertionError);
  sim.schedule(5_ms, [&sim] {
    EXPECT_THROW(sim.schedule_at(TimePoint::origin() + 1_ms, [] {}),
                 AssertionError);
  });
  sim.run();
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule(1_ms, [&] { ++count; });
  sim.schedule(10_ms, [&] { ++count; });
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_ms);
  // The 10ms event still fires later.
  sim.run_until(TimePoint::origin() + 20_ms);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventAtHorizonBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule(5_ms, [&] { fired = true; });
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule(1_ms, [&] { ran = true; });
  EXPECT_TRUE(sim.pending(h));
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
  EXPECT_FALSE(sim.cancel(h));  // double cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelInertHandleIsNoop) {
  Simulator sim;
  EventHandle h;
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
}

TEST(Simulator, CancelFromWithinEarlierEvent) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule(2_ms, [&] { ran = true; });
  sim.schedule(1_ms, [&] { sim.cancel(h); });
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StopRequestHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(Duration::ms(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  // Remaining events still pending.
  EXPECT_EQ(sim.events_pending(), 7u);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule(1_ms, [&] { ++count; });
  sim.schedule(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(1_ms, [] {});
  const auto h = sim.schedule(1_ms, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, RunWithEmptyQueueKeepsClock) {
  Simulator sim;
  sim.schedule(1_ms, [] {});
  sim.run();
  const TimePoint t = sim.now();
  sim.run();  // no events: clock unchanged
  EXPECT_EQ(sim.now(), t);
}

TEST(ScopedTimer, CancelsOnDestruction) {
  Simulator sim;
  bool fired = false;
  {
    ScopedTimer t(sim, 1_ms, [&] { fired = true; });
    EXPECT_TRUE(t.active());
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(ScopedTimer, FiresWhenKeptAlive) {
  Simulator sim;
  bool fired = false;
  ScopedTimer t(sim, 1_ms, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(t.active());
}

TEST(ScopedTimer, MoveTransfersOwnership) {
  Simulator sim;
  int fired = 0;
  ScopedTimer a(sim, 1_ms, [&] { ++fired; });
  ScopedTimer b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.active());
  // Move-assignment cancels the destination's previous timer.
  ScopedTimer c(sim, 2_ms, [&] { fired += 10; });
  c = std::move(b);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  Rng rng(99);
  std::int64_t count = 0;
  TimePoint last = TimePoint::origin();
  std::function<void()> chain = [&] {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
    ++count;
    if (count < 20000) {
      sim.schedule(Duration::ps(static_cast<std::int64_t>(rng.uniform_int(1000000))), chain);
    }
  };
  sim.schedule(Duration::zero(), chain);
  sim.run();
  EXPECT_EQ(count, 20000);
}

}  // namespace
}  // namespace qnetp::des
