#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qbase/rng.hpp"

namespace qnetp::des {
namespace {

using namespace qnetp::literals;

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3_ms, [&] { order.push_back(3); });
  sim.schedule(1_ms, [&] { order.push_back(1); });
  sim.schedule(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 3_ms);
}

TEST(Simulator, FifoTieBreakAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1_ms, [&] {
    times.push_back(sim.now().as_ms());
    sim.schedule(1_ms, [&] { times.push_back(sim.now().as_ms()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool ran = false;
  sim.schedule(1_ms, [&] {
    sim.schedule(Duration::zero(), [&] {
      ran = true;
      EXPECT_DOUBLE_EQ(sim.now().as_ms(), 1.0);
    });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingEmptyCallableAsserts) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1_ms, std::function<void()>{}), AssertionError);
}

TEST(Simulator, SchedulingIntoThePastAsserts) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1_ms, [] {}), AssertionError);
  sim.schedule(5_ms, [&sim] {
    EXPECT_THROW(sim.schedule_at(TimePoint::origin() + 1_ms, [] {}),
                 AssertionError);
  });
  sim.run();
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule(1_ms, [&] { ++count; });
  sim.schedule(10_ms, [&] { ++count; });
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_ms);
  // The 10ms event still fires later.
  sim.run_until(TimePoint::origin() + 20_ms);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventAtHorizonBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule(5_ms, [&] { fired = true; });
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule(1_ms, [&] { ran = true; });
  EXPECT_TRUE(sim.pending(h));
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
  EXPECT_FALSE(sim.cancel(h));  // double cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelInertHandleIsNoop) {
  Simulator sim;
  EventHandle h;
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
}

TEST(Simulator, CancelFromWithinEarlierEvent) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule(2_ms, [&] { ran = true; });
  sim.schedule(1_ms, [&] { sim.cancel(h); });
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StopRequestHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(Duration::ms(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  // Remaining events still pending.
  EXPECT_EQ(sim.events_pending(), 7u);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule(1_ms, [&] { ++count; });
  sim.schedule(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(1_ms, [] {});
  const auto h = sim.schedule(1_ms, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, RunWithEmptyQueueKeepsClock) {
  Simulator sim;
  sim.schedule(1_ms, [] {});
  sim.run();
  const TimePoint t = sim.now();
  sim.run();  // no events: clock unchanged
  EXPECT_EQ(sim.now(), t);
}

TEST(ScopedTimer, CancelsOnDestruction) {
  Simulator sim;
  bool fired = false;
  {
    ScopedTimer t(sim, 1_ms, [&] { fired = true; });
    EXPECT_TRUE(t.active());
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(ScopedTimer, FiresWhenKeptAlive) {
  Simulator sim;
  bool fired = false;
  ScopedTimer t(sim, 1_ms, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(t.active());
}

TEST(ScopedTimer, MoveTransfersOwnership) {
  Simulator sim;
  int fired = 0;
  ScopedTimer a(sim, 1_ms, [&] { ++fired; });
  ScopedTimer b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.active());
  // Move-assignment cancels the destination's previous timer.
  ScopedTimer c(sim, 2_ms, [&] { fired += 10; });
  c = std::move(b);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelDestroysClosureEagerly) {
  Simulator sim;
  auto sentinel = std::make_shared<int>(42);
  std::weak_ptr<int> watch = sentinel;
  const EventHandle h =
      sim.schedule(1_ms, [s = std::move(sentinel)] { (void)s; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(sim.cancel(h));
  // The closure (and the sentinel it captured) is gone before cancel
  // returned — it does not linger in the heap until drained.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, CancelDestroysHeapAllocatedClosureEagerly) {
  // Closures larger than the inline buffer take the heap fallback; eager
  // destruction must hold for them too.
  Simulator sim;
  auto sentinel = std::make_shared<int>(1);
  std::weak_ptr<int> watch = sentinel;
  struct Big {
    std::shared_ptr<int> s;
    char pad[128];
  };
  const EventHandle h =
      sim.schedule(1_ms, [big = Big{std::move(sentinel), {}}] { (void)big; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_TRUE(watch.expired());
}

TEST(Simulator, ExecutedEventClosureDestroyedAfterRun) {
  Simulator sim;
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  sim.schedule(1_ms, [s = std::move(sentinel)] { EXPECT_EQ(*s, 7); });
  sim.run();
  EXPECT_TRUE(watch.expired());
}

TEST(Simulator, EventsPendingMatchesHeapOccupancy) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule(Duration::us(i + 1), [] {}));
  }
  EXPECT_EQ(sim.events_pending(), 100u);
  // Cancel every other event: the count drops immediately, not lazily at
  // dispatch time.
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(handles[i]));
  }
  EXPECT_EQ(sim.events_pending(), 50u);
  std::uint64_t ran = sim.run();
  EXPECT_EQ(ran, 50u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, StaleHandleAfterSlotReuseIsInert) {
  Simulator sim;
  bool new_ran = false;
  const EventHandle old_h = sim.schedule(1_ms, [] { FAIL(); });
  EXPECT_TRUE(sim.cancel(old_h));
  // The next schedule reuses the freed slot; the stale handle must not
  // alias the new event.
  const EventHandle new_h = sim.schedule(2_ms, [&] { new_ran = true; });
  EXPECT_FALSE(sim.pending(old_h));
  EXPECT_FALSE(sim.cancel(old_h));
  EXPECT_TRUE(sim.pending(new_h));
  sim.run();
  EXPECT_TRUE(new_ran);
}

TEST(Simulator, DeterministicUnderInterleavedScheduleCancel) {
  // Two identical runs of a random schedule/cancel interleaving must
  // execute the same events in the same order at the same instants.
  auto trace = [] {
    Simulator sim;
    Rng rng(1234);
    std::vector<std::pair<std::int64_t, int>> log;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 2000; ++i) {
      const auto delay =
          Duration::ps(static_cast<std::int64_t>(rng.uniform_int(500000)));
      handles.push_back(sim.schedule(delay, [&log, i, &sim] {
        log.emplace_back(sim.now().count_ps(), i);
      }));
      if (i % 3 == 0) {
        const auto victim = rng.uniform_int(handles.size());
        sim.cancel(handles[victim]);
      }
    }
    sim.run();
    return log;
  };
  const auto a = trace();
  const auto b = trace();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Simulator, FifoTieBreakSurvivesCancellationChurn) {
  // Cancellations reshuffle the heap internally; same-instant events must
  // still run in scheduling order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> cancelled;
  for (int i = 0; i < 50; ++i) {
    cancelled.push_back(sim.schedule(1_ms, [] { FAIL(); }));
    sim.schedule(2_ms, [&order, i] { order.push_back(i); });
  }
  for (const auto& h : cancelled) EXPECT_TRUE(sim.cancel(h));
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CancelOwnHandleFromCallbackIsNoop) {
  Simulator sim;
  EventHandle h;
  int runs = 0;
  h = sim.schedule(1_ms, [&] {
    ++runs;
    // The executing event is no longer pending from inside its own body.
    EXPECT_FALSE(sim.pending(h));
    EXPECT_FALSE(sim.cancel(h));
  });
  sim.run();
  EXPECT_EQ(runs, 1);
}

TEST(ScopedTimer, MovedFromTimerCannotFireLate) {
  Simulator sim;
  int fired = 0;
  ScopedTimer outer;
  {
    ScopedTimer inner(sim, 1_ms, [&] { ++fired; });
    outer = std::move(inner);
    // inner's destructor runs here; it must not cancel the moved timer.
  }
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelledClosureDestructorMayScheduleReentrantly) {
  // A cancelled closure's captures are destroyed inside cancel(); if a
  // captured RAII object schedules from its destructor (growing the slot
  // slab), the kernel's bookkeeping must survive it.
  Simulator sim;
  bool fired = false;
  struct Rescheduler {
    Simulator* sim;
    bool* fired;
    bool armed = true;
    Rescheduler(Simulator* s, bool* f) : sim(s), fired(f) {}
    Rescheduler(Rescheduler&& o) noexcept
        : sim(o.sim), fired(o.fired), armed(o.armed) {
      o.armed = false;
    }
    Rescheduler(const Rescheduler&) = delete;
    ~Rescheduler() {
      if (!armed) return;
      // Two events: the first reuses the slot being released, the second
      // forces the slab to grow (reallocating slots_).
      sim->schedule(Duration::ms(1), [f = fired] { *f = true; });
      sim->schedule(Duration::ms(1), [] {});
    }
  };
  const EventHandle h =
      sim.schedule(1_ms, [r = Rescheduler(&sim, &fired)] { (void)r; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));  // generation bump survived the reentry
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(ScopedTimer, CancelReleasesCapturedState) {
  Simulator sim;
  auto sentinel = std::make_shared<std::string>("qubit");
  std::weak_ptr<std::string> watch = sentinel;
  ScopedTimer t(sim, 1_ms, [s = std::move(sentinel)] { (void)s; });
  t.cancel();
  // A cutoff timer's captured qubit state is released at cancel time.
  EXPECT_TRUE(watch.expired());
  sim.run();
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  Rng rng(99);
  std::int64_t count = 0;
  TimePoint last = TimePoint::origin();
  std::function<void()> chain = [&] {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
    ++count;
    if (count < 20000) {
      sim.schedule(Duration::ps(static_cast<std::int64_t>(rng.uniform_int(1000000))), chain);
    }
  };
  sim.schedule(Duration::zero(), chain);
  sim.run();
  EXPECT_EQ(count, 20000);
}

}  // namespace
}  // namespace qnetp::des
