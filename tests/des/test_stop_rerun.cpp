// Simulator::stop() and run_until() edge cases: the contracts the
// sharded kernel's conservative windows lean on (events exactly at the
// window end, stop mid-dispatch, re-running after a stop).
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.hpp"
#include "qbase/units.hpp"

namespace qnetp::des {
namespace {

using namespace qnetp::literals;

TEST(StopRerun, EventExactlyAtHorizonRuns) {
  Simulator sim;
  bool at_horizon = false;
  bool after_horizon = false;
  sim.schedule(5_ms, [&] { at_horizon = true; });
  sim.schedule(5_ms + Duration::ps(1), [&] { after_horizon = true; });
  const auto ran = sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(ran, 1u);
  EXPECT_TRUE(at_horizon);       // horizon is inclusive
  EXPECT_FALSE(after_horizon);   // one picosecond later is not
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_ms);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(StopRerun, ClockAdvancesToHorizonWhenDrainedEarly) {
  Simulator sim;
  sim.schedule(1_ms, [] {});
  sim.run_until(TimePoint::origin() + 10_ms);
  // Nothing left after 1 ms, but the bounded run still owns the whole
  // window: the clock lands on the horizon, not the last event.
  EXPECT_EQ(sim.now(), TimePoint::origin() + 10_ms);
}

TEST(StopRerun, NextEventTimePeeksWithoutDisturbing) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
  sim.schedule(3_ms, [] {});
  sim.schedule(1_ms, [] {});
  EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + 1_ms);
  EXPECT_EQ(sim.events_pending(), 2u);  // peeking pops nothing
  sim.run();
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
}

TEST(StopRerun, StopMidDispatchPreservesPendingAndClock) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule(1_ms, [&] { ran.push_back(1); });
  sim.schedule(2_ms, [&] {
    ran.push_back(2);
    sim.stop();
  });
  sim.schedule(3_ms, [&] { ran.push_back(3); });
  sim.run_until(TimePoint::origin() + 10_ms);
  // The stopping event finishes, later events stay queued, and the clock
  // holds at the stop instant instead of jumping to the horizon.
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_pending(), 1u);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 2_ms);
}

TEST(StopRerun, RerunAfterStopResumesFromPendingWork) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule(1_ms, [&] {
    ran.push_back(1);
    sim.stop();
  });
  sim.schedule(2_ms, [&] { ran.push_back(2); });
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(ran, (std::vector<int>{1}));

  // run_until clears the stop flag on entry: the same call again picks
  // up the remaining event and completes the window.
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_ms);
}

TEST(StopRerun, StopBeforeRunStopsNothingLater) {
  Simulator sim;
  bool ran = false;
  sim.stop();  // stale stop from an earlier window must not leak
  sim.schedule(1_ms, [&] { ran = true; });
  sim.run_until(TimePoint::origin() + 2_ms);
  EXPECT_TRUE(ran);
}

TEST(StopRerun, StepDispatchesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1_ms, [&] { ++count; });
  sim.schedule(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());  // empty queue
}

}  // namespace
}  // namespace qnetp::des
