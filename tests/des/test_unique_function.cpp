#include "des/unique_function.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>

namespace qnetp::des {
namespace {

TEST(UniqueFunction, DefaultIsEmpty) {
  UniqueFunction f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, EmptyStdFunctionStaysEmpty) {
  // An empty std::function must not masquerade as a valid callable; the
  // scheduler's assert relies on this to fail at the call site.
  const std::function<void()> none;
  UniqueFunction f(none);
  EXPECT_FALSE(static_cast<bool>(f));
  UniqueFunction g(static_cast<void (*)()>(nullptr));
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(UniqueFunction, NonEmptyStdFunctionWorks) {
  int calls = 0;
  const std::function<void()> fn = [&calls] { ++calls; };
  UniqueFunction f(fn);
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, InvokesInlineClosure) {
  int calls = 0;
  UniqueFunction f([&] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, AcceptsMoveOnlyCapture) {
  auto p = std::make_unique<int>(5);
  int seen = 0;
  UniqueFunction f([p = std::move(p), &seen] { seen = *p; });
  f();
  EXPECT_EQ(seen, 5);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int calls = 0;
  UniqueFunction a([&] { ++calls; });
  UniqueFunction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, MoveAssignDestroysPreviousTarget) {
  auto sentinel = std::make_shared<int>(1);
  std::weak_ptr<int> watch = sentinel;
  UniqueFunction target([s = std::move(sentinel)] { (void)s; });
  target = UniqueFunction([] {});
  EXPECT_TRUE(watch.expired());
  target();  // replacement is callable
}

TEST(UniqueFunction, ResetDestroysCapturesImmediately) {
  auto sentinel = std::make_shared<int>(3);
  std::weak_ptr<int> watch = sentinel;
  UniqueFunction f([s = std::move(sentinel)] { (void)s; });
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, HeapFallbackForLargeClosures) {
  struct Big {
    char pad[2 * UniqueFunction::kInlineSize] = {};
    int value = 9;
  };
  int seen = 0;
  UniqueFunction f([big = Big{}, &seen] { seen = big.value; });
  UniqueFunction g = std::move(f);
  g();
  EXPECT_EQ(seen, 9);
}

TEST(UniqueFunction, HeapFallbackDestroysOnReset) {
  auto sentinel = std::make_shared<int>(4);
  std::weak_ptr<int> watch = sentinel;
  struct Big {
    std::shared_ptr<int> s;
    char pad[2 * UniqueFunction::kInlineSize] = {};
  };
  UniqueFunction f([b = Big{std::move(sentinel), {}}] { (void)b; });
  f.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(UniqueFunction, DestructorReleasesCaptures) {
  auto sentinel = std::make_shared<int>(8);
  std::weak_ptr<int> watch = sentinel;
  {
    UniqueFunction f([s = std::move(sentinel)] { (void)s; });
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace qnetp::des
