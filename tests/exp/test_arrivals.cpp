#include "exp/traffic.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace qnetp::exp {
namespace {

using qnetp::Duration;
using qnetp::TimePoint;

std::vector<TimePoint> arrivals_until(ArrivalProcess& proc, TimePoint end) {
  std::vector<TimePoint> out;
  TimePoint t = TimePoint::origin();
  for (;;) {
    t = proc.next_after(t);
    if (t >= end) break;
    out.push_back(t);
  }
  return out;
}

TEST(PoissonArrivals, EmpiricalRateWithinConfidenceInterval) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::poisson;
  cfg.rate = 5.0;
  const double horizon_s = 2000.0;
  ArrivalProcess proc(cfg, 77);
  const auto ts = arrivals_until(
      proc, TimePoint::origin() + Duration::seconds(horizon_s));
  // Poisson count over T has mean rate*T and stddev sqrt(rate*T); allow
  // a generous 4-sigma band so the seeded test never flakes.
  const double expected = cfg.rate * horizon_s;
  const double sigma = std::sqrt(expected);
  EXPECT_GT(static_cast<double>(ts.size()), expected - 4.0 * sigma);
  EXPECT_LT(static_cast<double>(ts.size()), expected + 4.0 * sigma);
  // Strictly increasing times.
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_GT(ts[i], ts[i - 1]);
}

TEST(PoissonArrivals, InterarrivalMeanMatches) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::poisson;
  cfg.rate = 2.0;
  ArrivalProcess proc(cfg, 9);
  const auto ts = arrivals_until(
      proc, TimePoint::origin() + Duration::seconds(5000.0));
  ASSERT_GT(ts.size(), 1000u);
  double sum = 0.0;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    sum += (ts[i] - ts[i - 1]).as_seconds();
  }
  const double mean = sum / static_cast<double>(ts.size() - 1);
  EXPECT_NEAR(mean, 1.0 / cfg.rate, 0.05);
}

TEST(MmppArrivals, DwellTimesMatchConfiguredMeans) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::mmpp;
  cfg.burst_rate = 20.0;
  cfg.idle_rate = 0.5;
  cfg.burst_dwell = Duration::seconds(2);
  cfg.idle_dwell = Duration::seconds(8);
  ArrivalProcess proc(cfg, 1234);
  (void)arrivals_until(proc,
                       TimePoint::origin() + Duration::seconds(20000.0));
  const MmppDebug& dbg = proc.mmpp_debug();
  // Thousands of phase alternations: the mean dwell of each phase must
  // match its exponential parameter within a few percent.
  ASSERT_GT(dbg.bursts, 500u);
  ASSERT_GT(dbg.idles, 500u);
  const double burst_mean =
      dbg.burst_time.as_seconds() / static_cast<double>(dbg.bursts);
  const double idle_mean =
      dbg.idle_time.as_seconds() / static_cast<double>(dbg.idles);
  EXPECT_NEAR(burst_mean, cfg.burst_dwell.as_seconds(),
              0.15 * cfg.burst_dwell.as_seconds());
  EXPECT_NEAR(idle_mean, cfg.idle_dwell.as_seconds(),
              0.15 * cfg.idle_dwell.as_seconds());
  // Phases alternate, so the counts differ by at most one.
  const std::uint64_t diff =
      dbg.bursts > dbg.idles ? dbg.bursts - dbg.idles : dbg.idles - dbg.bursts;
  EXPECT_LE(diff, 1u);
}

TEST(MmppArrivals, OverallRateIsDwellWeightedMixture) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::mmpp;
  cfg.burst_rate = 10.0;
  cfg.idle_rate = 1.0;
  cfg.burst_dwell = Duration::seconds(5);
  cfg.idle_dwell = Duration::seconds(15);
  const double horizon_s = 20000.0;
  ArrivalProcess proc(cfg, 42);
  const auto ts = arrivals_until(
      proc, TimePoint::origin() + Duration::seconds(horizon_s));
  const double p_burst = cfg.burst_dwell.as_seconds() /
                         (cfg.burst_dwell.as_seconds() +
                          cfg.idle_dwell.as_seconds());
  const double mixture_rate =
      p_burst * cfg.burst_rate + (1.0 - p_burst) * cfg.idle_rate;
  const double empirical = static_cast<double>(ts.size()) / horizon_s;
  EXPECT_NEAR(empirical, mixture_rate, 0.1 * mixture_rate);
}

TEST(MmppArrivals, BurstierThanPoisson) {
  // Index of dispersion of counts over fixed bins: ~1 for Poisson,
  // substantially above 1 for an MMPP with distinct phase rates.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::mmpp;
  cfg.burst_rate = 20.0;
  cfg.idle_rate = 0.5;
  cfg.burst_dwell = Duration::seconds(4);
  cfg.idle_dwell = Duration::seconds(12);
  ArrivalProcess proc(cfg, 7);
  const double horizon_s = 10000.0;
  const auto ts = arrivals_until(
      proc, TimePoint::origin() + Duration::seconds(horizon_s));
  const double bin_s = 4.0;
  std::vector<double> counts(
      static_cast<std::size_t>(horizon_s / bin_s), 0.0);
  for (const TimePoint t : ts) {
    const auto bin = static_cast<std::size_t>(
        (t - TimePoint::origin()).as_seconds() / bin_s);
    if (bin < counts.size()) counts[bin] += 1.0;
  }
  double mean = 0.0;
  for (double c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  double var = 0.0;
  for (double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts.size() - 1);
  EXPECT_GT(var / mean, 3.0);
}

TEST(DiurnalArrivals, PeakHalfOutweighsTroughHalf) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::diurnal;
  cfg.peak_rate = 6.0;
  cfg.trough_rate = 0.5;
  cfg.period = Duration::seconds(100);
  ArrivalProcess proc(cfg, 5);
  const auto ts = arrivals_until(
      proc, TimePoint::origin() + Duration::seconds(10000.0));
  // rate(t) peaks at the half-period point of every cycle; count
  // arrivals landing in the middle half of each period vs the outer
  // half (the trough is at the period boundaries).
  double middle = 0.0, outer = 0.0;
  const double period_s = cfg.period.as_seconds();
  for (const TimePoint t : ts) {
    const double phase = std::fmod(
        (t - TimePoint::origin()).as_seconds(), period_s) / period_s;
    if (phase >= 0.25 && phase < 0.75) {
      middle += 1.0;
    } else {
      outer += 1.0;
    }
  }
  EXPECT_GT(middle, 2.0 * outer);
  // The thinned stream must also respect the overall mean rate.
  const double mean_rate = 0.5 * (cfg.peak_rate + cfg.trough_rate);
  EXPECT_NEAR(static_cast<double>(ts.size()) / 10000.0, mean_rate,
              0.1 * mean_rate);
}

TEST(DiurnalArrivals, RateAtFollowsRaisedCosine) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::diurnal;
  cfg.peak_rate = 4.0;
  cfg.trough_rate = 1.0;
  cfg.period = Duration::seconds(60);
  ArrivalProcess proc(cfg, 1);
  EXPECT_NEAR(proc.rate_at(TimePoint::origin()), 1.0, 1e-9);
  EXPECT_NEAR(proc.rate_at(TimePoint::origin() + Duration::seconds(30)),
              4.0, 1e-9);
  EXPECT_NEAR(proc.rate_at(TimePoint::origin() + Duration::seconds(15)),
              2.5, 1e-9);
}

TEST(ArrivalDeterminism, SeededReplayIsBitIdentical) {
  for (const ArrivalKind kind :
       {ArrivalKind::poisson, ArrivalKind::mmpp, ArrivalKind::diurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    ArrivalProcess a(cfg, 99), b(cfg, 99);
    const TimePoint end = TimePoint::origin() + Duration::seconds(500.0);
    const auto ta = arrivals_until(a, end);
    const auto tb = arrivals_until(b, end);
    ASSERT_FALSE(ta.empty());
    ASSERT_EQ(ta.size(), tb.size()) << to_string(kind);
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].count_ps(), tb[i].count_ps()) << to_string(kind);
    }
  }
}

TEST(ArrivalDeterminism, TrialSeedsGiveIndependentStreams) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::poisson;
  cfg.rate = 3.0;
  const TimePoint end = TimePoint::origin() + Duration::seconds(1000.0);
  ArrivalProcess a(cfg, derive_stream_seed(1, 0));
  ArrivalProcess b(cfg, derive_stream_seed(1, 1));
  const auto ta = arrivals_until(a, end);
  const auto tb = arrivals_until(b, end);
  // Different derived streams must not collide: count exact matches of
  // the first min(n) arrival instants.
  const std::size_t n = std::min(ta.size(), tb.size());
  ASSERT_GT(n, 100u);
  std::size_t same = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ta[i].count_ps() == tb[i].count_ps()) ++same;
  }
  EXPECT_EQ(same, 0u);
}

}  // namespace
}  // namespace qnetp::exp
