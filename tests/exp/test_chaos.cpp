// chaos_trial: smoke accounting under the default fault profile, the
// fault-free degenerate case, determinism for a fixed seed, digest
// invariance across shard counts, and the partition-vs-sever view
// equivalence that bench/chaos_soak gates on.
#include "exp/chaos.hpp"

#include <gtest/gtest.h>

#include "exp/summary.hpp"

namespace qnetp::exp {
namespace {

using namespace qnetp::literals;

ChaosConfig tiny_config() {
  ChaosConfig cfg;
  cfg.family = TopologyFamily::grid;
  cfg.size = 3;
  cfg.n_circuits = 2;
  cfg.pairs_per_request = 2;
  cfg.warmup = 2_s;
  cfg.horizon = 4_s;
  cfg.drain = 1_s;
  return cfg;
}

TEST(ChaosTrial, RunsCleanUnderDefaultFaults) {
  const auto r = chaos_trial(tiny_config(), 4242);
  EXPECT_EQ(r.scalars.at("ok"), 1.0);
  EXPECT_GT(r.scalars.at("admitted"), 0.0);
  EXPECT_EQ(r.scalars.at("slo"), 1.0);
  // The chaos actually happened and the transport repaired it.
  EXPECT_GT(r.scalars.at("fault_dropped"), 0.0);
  EXPECT_GT(r.scalars.at("retransmits"), 0.0);
  EXPECT_GT(r.scalars.at("duplicates_filtered"), 0.0);
  // Robustness gates: every trial must end accounted and empty.
  EXPECT_EQ(r.scalars.at("conservation_ok"), 1.0);
  EXPECT_EQ(r.scalars.at("consistency_ok"), 1.0);
  EXPECT_EQ(r.scalars.at("leak_free"), 1.0);
  EXPECT_EQ(r.scalars.at("quiescent"), 1.0);
  EXPECT_EQ(r.scalars.at("dead_verdicts"), 0.0);  // no cut in this config
}

TEST(ChaosTrial, FaultFreeProfileInjectsNothing) {
  ChaosConfig cfg = tiny_config();
  cfg.faults = netmsg::FaultProfile{};
  const auto r = chaos_trial(cfg, 4242);
  EXPECT_EQ(r.scalars.at("ok"), 1.0);
  EXPECT_EQ(r.scalars.at("fault_dropped"), 0.0);
  EXPECT_EQ(r.scalars.at("corrupted"), 0.0);
  EXPECT_EQ(r.scalars.at("net_duplicated"), 0.0);
  EXPECT_EQ(r.scalars.at("retransmits"), 0.0);
  EXPECT_EQ(r.scalars.at("slo"), 1.0);
  EXPECT_EQ(r.scalars.at("quiescent"), 1.0);
}

TEST(ChaosTrial, DeterministicForAFixedSeed) {
  const auto a = chaos_trial(tiny_config(), 99);
  const auto b = chaos_trial(tiny_config(), 99);
  SummaryAccumulator acc_a, acc_b;
  acc_a.add(a);
  acc_b.add(b);
  EXPECT_EQ(acc_a.digest(), acc_b.digest());
  // Different seeds draw different fault patterns.
  const auto c = chaos_trial(tiny_config(), 100);
  EXPECT_NE(a.scalars.at("net_sent"), c.scalars.at("net_sent"));
}

TEST(ChaosTrial, DigestInvariantAcrossShardCounts) {
  ChaosConfig cfg = tiny_config();
  cfg.regions = 4;
  cfg.region_rows = 2;
  cfg.region_cols = 2;
  cfg.n_circuits = 1;
  std::uint64_t baseline = 0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ChaosConfig run_cfg = cfg;
    run_cfg.shards = shards;
    SummaryAccumulator acc;
    acc.add(chaos_trial(run_cfg, 7));
    if (shards == 1) {
      baseline = acc.digest();
    } else {
      EXPECT_EQ(acc.digest(), baseline) << "shards=" << shards;
    }
  }
  EXPECT_NE(baseline, 0u);
}

TEST(ChaosTrial, SilentPartitionMatchesExplicitSever) {
  ChaosConfig cfg = tiny_config();
  cfg.horizon = 6_s;
  cfg.cut_link = true;
  cfg.cut_at = 2_s;
  cfg.cut_a = NodeId{1};
  cfg.cut_b = NodeId{2};
  cfg.silent_partition = true;
  const auto partitioned = chaos_trial(cfg, 5);
  cfg.silent_partition = false;
  const auto severed = chaos_trial(cfg, 5);
  // The partition is only observable through the transport's verdicts
  // (the sever twin reaches its verdicts too — flooding keeps probing
  // the dead adjacency — but it never NEEDED them to withdraw)...
  EXPECT_GT(partitioned.scalars.at("dead_verdicts"), 0.0);
  // ...and both end in the same routed view.
  EXPECT_EQ(partitioned.scalars.at("view_digest_lo"),
            severed.scalars.at("view_digest_lo"));
  EXPECT_EQ(partitioned.scalars.at("view_digest_hi"),
            severed.scalars.at("view_digest_hi"));
  EXPECT_EQ(partitioned.scalars.at("quiescent"), 1.0);
  EXPECT_EQ(severed.scalars.at("quiescent"), 1.0);
}

}  // namespace
}  // namespace qnetp::exp
