#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "exp/summary.hpp"

namespace qnetp::exp {
namespace {

/// A cheap stochastic trial: result depends only on the trial seed.
TrialResult stochastic_trial(const Trial& t) {
  Rng rng(t.seed);
  TrialResult r;
  r.set("index", static_cast<double>(t.index));
  r.set("value", rng.normal(5.0, 1.0));
  for (int i = 0; i < 10; ++i) r.add_sample("draws", rng.uniform());
  return r;
}

TEST(TrialRunner, ResultsInTrialOrder) {
  TrialRunner runner({1, 77});
  const auto results = runner.run(5, stochastic_trial);
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(results[i].scalars.at("index"),
                     static_cast<double>(i));
  }
}

TEST(TrialRunner, SeedsMatchDerivation) {
  TrialRunner runner({1, 123});
  const auto results = runner.run(3, [](const Trial& t) {
    TrialResult r;
    r.set("seed_lo", static_cast<double>(t.seed & 0xFFFFFFFFull));
    return r;
  });
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(
        results[i].scalars.at("seed_lo"),
        static_cast<double>(trial_seed(123, i) & 0xFFFFFFFFull));
  }
}

TEST(TrialRunner, BitIdenticalAcrossJobCounts) {
  const auto serial =
      SummaryAccumulator::aggregate(TrialRunner({1, 42}).run(
          12, stochastic_trial));
  for (const std::size_t jobs : {2u, 3u, 8u, 16u}) {
    const auto parallel = SummaryAccumulator::aggregate(
        TrialRunner({jobs, 42}).run(12, stochastic_trial));
    EXPECT_EQ(parallel.digest(), serial.digest()) << "jobs=" << jobs;
  }
}

TEST(TrialRunner, DifferentBaseSeedsDiffer) {
  const auto a = SummaryAccumulator::aggregate(
      TrialRunner({1, 42}).run(6, stochastic_trial));
  const auto b = SummaryAccumulator::aggregate(
      TrialRunner({1, 43}).run(6, stochastic_trial));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(TrialRunner, ZeroTrials) {
  TrialRunner runner({4, 1});
  EXPECT_TRUE(runner.run(0, stochastic_trial).empty());
}

TEST(TrialRunner, MoreJobsThanTrials) {
  TrialRunner runner({16, 9});
  const auto results = runner.run(2, stochastic_trial);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[1].scalars.at("index"), 1.0);
}

TEST(TrialRunner, TrialsActuallyRunConcurrently) {
  // Two trials that can only finish if both are in flight at once:
  // each spins until the other has started (with a timeout escape).
  std::atomic<int> started{0};
  TrialRunner runner({2, 1});
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = runner.run(2, [&](const Trial& t) {
    started.fetch_add(1);
    while (started.load() < 2 &&
           std::chrono::steady_clock::now() - t0 <
               std::chrono::seconds(5)) {
      std::this_thread::yield();
    }
    TrialResult r;
    r.set("both_started", started.load() >= 2 ? 1.0 : 0.0);
    r.set("index", static_cast<double>(t.index));
    return r;
  });
  EXPECT_DOUBLE_EQ(results[0].scalars.at("both_started"), 1.0);
  EXPECT_DOUBLE_EQ(results[1].scalars.at("both_started"), 1.0);
}

TEST(TrialRunner, PropagatesTrialExceptions) {
  TrialRunner runner({3, 1});
  EXPECT_THROW(runner.run(8,
                          [](const Trial& t) -> TrialResult {
                            if (t.index == 4) {
                              throw std::runtime_error("trial 4 failed");
                            }
                            return TrialResult{};
                          }),
               std::runtime_error);
}

TEST(TrialRunner, SerialExceptionPropagates) {
  TrialRunner runner({1, 1});
  EXPECT_THROW(runner.run(2,
                          [](const Trial&) -> TrialResult {
                            throw std::logic_error("boom");
                          }),
               std::logic_error);
}

}  // namespace
}  // namespace qnetp::exp
