// shard_scaling scenario: digest invariance across shard counts on a
// small multi-region fabric, plus structural checks on the spec.
#include "exp/shard_scaling.hpp"

#include <gtest/gtest.h>

#include "exp/summary.hpp"

namespace qnetp::exp {
namespace {

using namespace qnetp::literals;

ShardScalingConfig tiny_config() {
  ShardScalingConfig cfg;
  cfg.regions = 4;
  cfg.region_rows = 2;
  cfg.region_cols = 2;
  cfg.circuits_per_region = 1;
  cfg.pairs_per_request = 1;
  cfg.arrivals.rate = 3.0;
  cfg.latency_budget = 1_s;
  cfg.horizon = 1_s;
  cfg.occupancy_samples = 2;
  return cfg;
}

TEST(ShardScaling, SpecShape) {
  const auto spec = shard_scaling_spec(tiny_config());
  spec.validate();
  EXPECT_EQ(spec.node_count(), 16u);
  EXPECT_EQ(spec.region_count(), 4u);
  // 4 links per 2x2 grid, 3 bridges.
  EXPECT_EQ(spec.link_count(), 4u * 4u + 3u);
  EXPECT_TRUE(spec.connected());
}

TEST(ShardScaling, DefaultConfigMeetsTheBenchFloor) {
  const ShardScalingConfig cfg;
  const auto spec = shard_scaling_spec(cfg);
  EXPECT_GE(spec.node_count(), 100u);
  EXPECT_GE(cfg.regions * cfg.circuits_per_region, 50u);
}

TEST(ShardScaling, TrialRunsAndAccounts) {
  const auto r = shard_scaling_trial(tiny_config(), 41);
  EXPECT_EQ(r.scalars.at("ok"), 1.0);
  EXPECT_EQ(r.scalars.at("admitted"), 4.0);
  EXPECT_EQ(r.scalars.at("consistency_ok"), 1.0);
  EXPECT_GT(r.scalars.at("offered"), 0.0);
  EXPECT_GT(r.scalars.at("completed"), 0.0);
  EXPECT_GT(r.scalars.at("classical_msgs"), 0.0);
  // offered arrivals all classified exactly once
  EXPECT_EQ(r.scalars.at("offered"), r.scalars.at("accepted") +
                                         r.scalars.at("shaped") +
                                         r.scalars.at("rejected"));
}

TEST(ShardScaling, DigestInvariantAcrossShardCounts) {
  const auto cfg = tiny_config();
  std::uint64_t baseline = 0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ShardScalingConfig run_cfg = cfg;
    run_cfg.shards = shards;
    SummaryAccumulator acc;
    acc.add(shard_scaling_trial(run_cfg, 41));
    acc.add(shard_scaling_trial(run_cfg, 42));
    if (shards == 1) {
      baseline = acc.digest();
    } else {
      EXPECT_EQ(acc.digest(), baseline) << "shards=" << shards;
    }
  }
  EXPECT_NE(baseline, 0u);
}

}  // namespace
}  // namespace qnetp::exp
