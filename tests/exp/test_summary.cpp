#include "exp/summary.hpp"

#include <gtest/gtest.h>

namespace qnetp::exp {
namespace {

TrialResult make_result(double scalar, std::initializer_list<double> samples) {
  TrialResult r;
  r.set("metric", scalar);
  for (double v : samples) r.add_sample("obs", v);
  return r;
}

TEST(SummaryAccumulator, AggregatesScalarsAndSamples) {
  SummaryAccumulator acc;
  acc.add(make_result(1.0, {10.0, 20.0}));
  acc.add(make_result(3.0, {30.0}));
  EXPECT_EQ(acc.trials(), 2u);
  EXPECT_DOUBLE_EQ(acc.scalar("metric").mean(), 2.0);
  EXPECT_EQ(acc.scalar("metric").count(), 2u);
  EXPECT_EQ(acc.pooled("obs").count(), 3u);
  EXPECT_DOUBLE_EQ(acc.pooled("obs").mean(), 20.0);
  EXPECT_EQ(acc.scalar_names(), std::vector<std::string>{"metric"});
  EXPECT_EQ(acc.sample_names(), std::vector<std::string>{"obs"});
}

TEST(SummaryAccumulator, MissingMetricsAreAbsent) {
  SummaryAccumulator acc;
  TrialResult partial;
  partial.set("sometimes", 1.0);
  acc.add(partial);
  acc.add(TrialResult{});  // a failed trial contributes nothing
  EXPECT_EQ(acc.trials(), 2u);
  EXPECT_TRUE(acc.has_scalar("sometimes"));
  EXPECT_FALSE(acc.has_scalar("never"));
  EXPECT_EQ(acc.scalar("sometimes").count(), 1u);
}

TEST(SummaryAccumulator, DigestDetectsValueChange) {
  SummaryAccumulator a, b, c;
  a.add(make_result(1.0, {2.0}));
  b.add(make_result(1.0, {2.0}));
  c.add(make_result(1.0, {2.0000000001}));
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(SummaryAccumulator, DigestDetectsMetricRename) {
  SummaryAccumulator a, b;
  TrialResult ra, rb;
  ra.set("x", 1.0);
  rb.set("y", 1.0);
  a.add(ra);
  b.add(rb);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SummaryAccumulator, DigestInvariantToQueryHistory) {
  SummaryAccumulator a, b;
  for (double v : {3.0, 1.0, 2.0}) {
    a.add(make_result(v, {v, v * 2}));
    b.add(make_result(v, {v, v * 2}));
  }
  // Quantile queries sort the sample buffers lazily; the digest must not
  // depend on whether any were made.
  (void)a.scalar("metric").quantile(0.5);
  (void)a.pooled("obs").quantile(0.9);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(SummaryAccumulator, BootstrapCiDeterministicAndSane) {
  SummaryAccumulator acc;
  Rng gen(7);
  for (int i = 0; i < 30; ++i) {
    acc.add(make_result(gen.normal(100.0, 5.0), {}));
  }
  const auto ci_a = acc.bootstrap_ci("metric");
  const auto ci_b = acc.bootstrap_ci("metric");
  EXPECT_DOUBLE_EQ(ci_a.lo, ci_b.lo);
  EXPECT_DOUBLE_EQ(ci_a.hi, ci_b.hi);
  EXPECT_TRUE(ci_a.contains(acc.scalar("metric").mean()));
  EXPECT_GT(ci_a.lo, 90.0);
  EXPECT_LT(ci_a.hi, 110.0);
}

}  // namespace
}  // namespace qnetp::exp
