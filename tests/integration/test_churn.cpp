// Runtime churn against live circuits: the capacity-leak regression
// (engine-initiated teardown must release controller capacity), severed
// mid-path links, relay-node failure, metric-only degrade/heal, the
// admission UPDATE re-signal to best-effort circuits, and the routed
// view driving admission around runtime failures.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "netsim/topology_spec.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t n,
                             EndpointId head_ep, EndpointId tail_ep) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = head_ep;
  r.tail_endpoint = tail_ep;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = n;
  return r;
}

double total_committed(const Network& net,
                       const std::vector<LinkId>& links) {
  double sum = 0.0;
  for (const LinkId id : links) sum += net.controller()->committed_lpr(id);
  return sum;
}

// The leak regression for the satellite bugfix: an ENGINE-initiated
// teardown (liveness loss, not Network::teardown_circuit) must flow back
// to Controller::release_circuit, or the admitted capacity is committed
// forever. Pre-fix, the controller never heard about the teardown and
// this test fails on both assertions.
TEST(ChurnBattery, EngineTeardownReleasesAdmittedCapacity) {
  NetworkConfig config;
  config.seed = 8101;
  auto net = make_chain(4, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));

  ctrl::CircuitPlanOptions options;
  options.requested_eer = 0.5;  // hard reservation: a leak is visible
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.8, options);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(net->controller()->planned_circuits(), 1u);
  const double committed = total_committed(*net, plan->links);
  ASSERT_GT(committed, 0.0);

  // Liveness loss at the head: the engine tears the circuit down on its
  // own — no Network::teardown_circuit involved.
  net->engine(NodeId{1}).teardown(plan->install.circuit_id,
                                  "classical connectivity lost");
  net->sim().run_until(net->sim().now() + 500_ms);
  net->service_control_plane();

  EXPECT_EQ(net->controller()->planned_circuits(), 0u)
      << "engine teardown never reached Controller::release_circuit";
  EXPECT_DOUBLE_EQ(total_committed(*net, plan->links), 0.0)
      << "admitted capacity leaked after engine-initiated teardown";
  EXPECT_TRUE(net->quiescent());
  net->sim().stop();
}

TEST(ChurnBattery, SeverMidPathLinkTearsDownActiveCircuit) {
  NetworkConfig config;
  config.seed = 8102;
  auto net = make_chain(4, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  Probe head_probe(*net, NodeId{1}, EndpointId{10});
  Probe tail_probe(*net, NodeId{4}, EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.8);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(
      plan->install.circuit_id,
      keep_request(1, 100000, EndpointId{10}, EndpointId{20})));
  net->sim().run_until(net->sim().now() + 2_s);
  EXPECT_GT(head_probe.delivered_count(), 0u)
      << "traffic must be flowing pre-churn";

  net->sever_link(NodeId{2}, NodeId{3});
  net->sim().run_until(net->sim().now() + 2_s);
  net->service_control_plane();

  // TEARDOWN was delivered end to end: the head engine dropped the
  // circuit and notified its application endpoint.
  EXPECT_FALSE(
      net->engine(NodeId{1}).circuit_rates(plan->install.circuit_id)
          .has_value());
  EXPECT_TRUE(head_probe.circuit_down());
  EXPECT_EQ(net->controller()->planned_circuits(), 0u);
  EXPECT_TRUE(net->quiescent());
  for (const NodeId id : net->node_ids()) {
    EXPECT_EQ(net->engine(id).consistency_check(), "")
        << "node " << id.value();
  }
  net->sim().stop();
}

TEST(ChurnBattery, KillRelayNodeCleansUpBothSides) {
  NetworkConfig config;
  config.seed = 8103;
  auto net = make_chain(5, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  Probe head_probe(*net, NodeId{1}, EndpointId{10});
  Probe tail_probe(*net, NodeId{5}, EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{5}, EndpointId{10}, EndpointId{20}, 0.75);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(
      plan->install.circuit_id,
      keep_request(1, 100000, EndpointId{10}, EndpointId{20})));
  net->sim().run_until(net->sim().now() + 2_s);

  net->fail_node(NodeId{3});
  EXPECT_TRUE(net->node_failed(NodeId{3}));
  net->sim().run_until(net->sim().now() + 2_s);
  net->service_control_plane();

  EXPECT_FALSE(
      net->engine(NodeId{1}).circuit_rates(plan->install.circuit_id)
          .has_value());
  EXPECT_TRUE(head_probe.circuit_down());
  EXPECT_EQ(net->controller()->planned_circuits(), 0u);
  // The dead node's qubits were freed too: the whole fabric is clean.
  EXPECT_TRUE(net->quiescent());
  for (const NodeId id : net->node_ids()) {
    EXPECT_EQ(net->engine(id).consistency_check(), "")
        << "node " << id.value();
  }
  net->sim().stop();
}

TEST(ChurnBattery, DegradeIsMetricOnlyAndHealRestoresThePath) {
  // 3x3 grid with link-state routing: degrading a link reroutes NEW
  // circuits around it without touching the one already running on it.
  NetworkConfig config;
  config.seed = 8104;
  auto net = netsim::TopologySpec::grid(3, 3, qhw::simulation_preset(),
                                        qhw::FiberParams::lab(2.0))
                 .build(config);
  net->enable_linkstate();
  auto& ssim = net->sharded_sim();
  ssim.run_until(ssim.now() + 3_s);
  net->service_control_plane();

  // Top row: 1 - 2 - 3.
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.75);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->path, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(
      plan->install.circuit_id,
      keep_request(1, 100000, EndpointId{10}, EndpointId{20})));
  ssim.run_until(ssim.now() + 1_s);

  net->degrade_link(NodeId{2}, NodeId{3}, 8.0);
  ssim.run_until(ssim.now() + 2_s);  // LSAs flood, the view re-converges
  net->service_control_plane();

  // The active circuit survived the metric change and kept delivering.
  ASSERT_TRUE(net->engine(NodeId{1})
                  .circuit_rates(plan->install.circuit_id)
                  .has_value());
  const auto before = probe.pair_count();
  ssim.run_until(ssim.now() + 1_s);
  EXPECT_GT(probe.pair_count(), before);

  // A new circuit routes around the degraded link (1-2-3 now costs 9).
  const auto detour = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{11}, EndpointId{21}, 0.7);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->path.size(), 5u) << "expected the 4-hop detour";
  for (std::size_t i = 0; i + 1 < detour->path.size(); ++i) {
    EXPECT_FALSE(detour->path[i] == NodeId{2} &&
                 detour->path[i + 1] == NodeId{3});
  }
  net->teardown_circuit(detour->install.circuit_id, "probe over");

  // Heal the metric: the direct path becomes preferred again.
  net->degrade_link(NodeId{2}, NodeId{3}, 1.0);
  ssim.run_until(ssim.now() + 2_s);
  net->service_control_plane();
  const auto direct = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{12}, EndpointId{22}, 0.7);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->path,
            (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));

  net->teardown_circuit(direct->install.circuit_id, "done");
  net->teardown_circuit(plan->install.circuit_id, "done");
  ssim.run_until(ssim.now() + 1_s);
  net->service_control_plane();
  EXPECT_EQ(net->controller()->planned_circuits(), 0u);
  EXPECT_TRUE(net->quiescent());
  ssim.stop();
}

TEST(ChurnBattery, BestEffortCircuitObservesResidualUpdate) {
  NetworkConfig config;
  config.seed = 8105;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));

  // Best-effort first: it is granted the full residual capacity.
  const auto be = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.8);
  ASSERT_TRUE(be.has_value());
  const auto rates_before =
      net->engine(NodeId{1}).circuit_rates(be->install.circuit_id);
  ASSERT_TRUE(rates_before.has_value());
  ASSERT_GT(rates_before->circuit_max_eer, 0.0);

  // A guaranteed circuit then reserves part of the same links: the
  // controller re-signals the shrunken residual to the BE head, which
  // applies it hop by hop (UPDATE).
  ctrl::CircuitPlanOptions options;
  options.requested_eer = be->max_eer * 0.5;
  const auto guaranteed = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{11}, EndpointId{21}, 0.8, options);
  ASSERT_TRUE(guaranteed.has_value());
  net->sim().run_until(net->sim().now() + 1_s);
  net->service_control_plane();
  net->sim().run_until(net->sim().now() + 1_s);

  const auto rates_after =
      net->engine(NodeId{1}).circuit_rates(be->install.circuit_id);
  ASSERT_TRUE(rates_after.has_value());
  EXPECT_LT(rates_after->circuit_max_eer, rates_before->circuit_max_eer)
      << "the BE circuit never observed the shrunken residual";
  std::uint64_t updates = 0;
  for (const NodeId id : net->node_ids()) {
    updates += net->engine(id).counters().updates_applied;
  }
  EXPECT_GT(updates, 0u);

  // Releasing the guarantee re-signals the regrown residual.
  net->teardown_circuit(guaranteed->install.circuit_id, "guarantee over");
  net->sim().run_until(net->sim().now() + 1_s);
  net->service_control_plane();
  net->sim().run_until(net->sim().now() + 1_s);
  const auto rates_restored =
      net->engine(NodeId{1}).circuit_rates(be->install.circuit_id);
  ASSERT_TRUE(rates_restored.has_value());
  EXPECT_GT(rates_restored->circuit_max_eer, rates_after->circuit_max_eer);

  net->teardown_circuit(be->install.circuit_id, "done");
  net->sim().run_until(net->sim().now() + 500_ms);
  net->service_control_plane();
  EXPECT_TRUE(net->quiescent());
  net->sim().stop();
}

TEST(ChurnBattery, RoutedViewDrivesAdmissionAroundSeveredLink) {
  // With link-state enabled, admission happens against the flooded view:
  // severing a link at runtime makes the next establish route around it,
  // and healing brings the direct path back.
  NetworkConfig config;
  config.seed = 8106;
  auto net = netsim::TopologySpec::grid(3, 3, qhw::simulation_preset(),
                                        qhw::FiberParams::lab(2.0))
                 .build(config);
  net->enable_linkstate();
  auto& ssim = net->sharded_sim();
  ssim.run_until(ssim.now() + 3_s);
  net->service_control_plane();
  const auto ls = net->linkstate_totals();
  EXPECT_GT(ls.lsas_received, 0u);
  EXPECT_GT(ls.spf_runs, 0u);

  net->sever_link(NodeId{2}, NodeId{3});
  ssim.run_until(ssim.now() + 2_s);
  net->service_control_plane();

  const auto detour = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.7);
  ASSERT_TRUE(detour.has_value());
  for (std::size_t i = 0; i + 1 < detour->path.size(); ++i) {
    const bool crosses =
        (detour->path[i] == NodeId{2} && detour->path[i + 1] == NodeId{3}) ||
        (detour->path[i] == NodeId{3} && detour->path[i + 1] == NodeId{2});
    EXPECT_FALSE(crosses) << "admission routed across the severed link";
  }
  net->teardown_circuit(detour->install.circuit_id, "done");

  net->heal_link(NodeId{2}, NodeId{3});
  ssim.run_until(ssim.now() + 2_s);
  net->service_control_plane();
  const auto direct = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{11}, EndpointId{21}, 0.7);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->path,
            (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
  net->teardown_circuit(direct->install.circuit_id, "done");
  ssim.run_until(ssim.now() + 500_ms);
  net->service_control_plane();
  EXPECT_EQ(net->controller()->planned_circuits(), 0u);
  EXPECT_TRUE(net->quiescent());
  ssim.stop();
}

}  // namespace
}  // namespace qnetp::netsim
