// End-to-end integration tests: full stack (controller -> signalling ->
// QNP -> link layer -> devices -> density matrices) on linear chains.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/oracle.hpp"
#include "netsim/probe.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;
using netmsg::RequestType;

class ChainTest : public ::testing::Test {
 protected:
  void build(double fidelity, std::size_t nodes = 3,
             NetworkConfig config = {}) {
    net_ = make_chain(nodes, config, qhw::simulation_preset(),
                      qhw::FiberParams::lab(2.0));
    head_ = NodeId{1};
    tail_ = NodeId{nodes};
    probe_ = std::make_unique<DualProbe>(*net_, head_, EndpointId{10},
                                         tail_, EndpointId{20});
    std::string reason;
    auto plan = net_->establish_circuit(head_, tail_, EndpointId{10},
                                        EndpointId{20}, fidelity, {},
                                        &reason);
    ASSERT_TRUE(plan.has_value()) << reason;
    plan_ = *plan;
  }

  qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t n) {
    qnp::AppRequest r;
    r.id = RequestId{id};
    r.head_endpoint = EndpointId{10};
    r.tail_endpoint = EndpointId{20};
    r.type = RequestType::keep;
    r.num_pairs = n;
    return r;
  }

  std::unique_ptr<Network> net_;
  NodeId head_, tail_;
  std::unique_ptr<DualProbe> probe_;
  ctrl::CircuitPlan plan_;
};

TEST_F(ChainTest, DeliversRequestedPairsAtBothEnds) {
  build(0.85);
  std::string reason;
  ASSERT_TRUE(net_->engine(head_).submit_request(
      plan_.install.circuit_id, keep_request(1, 5), &reason))
      << reason;
  net_->sim().run_until(net_->sim().now() + 20_s);

  EXPECT_EQ(probe_->head_delivery_count(), 5u);
  EXPECT_EQ(probe_->tail_delivery_count(), 5u);
  EXPECT_EQ(probe_->pair_count(), 5u);
  EXPECT_EQ(probe_->unmatched(), 0u);
  EXPECT_TRUE(probe_->head_completion(RequestId{1}).has_value());
  net_->sim().stop();
}

TEST_F(ChainTest, BothEndsAgreeOnPairIdentityAndState) {
  build(0.85);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 8)));
  net_->sim().run_until(net_->sim().now() + 30_s);

  ASSERT_EQ(probe_->pair_count(), 8u);
  EXPECT_EQ(probe_->unmatched(), 0u);
  EXPECT_EQ(probe_->state_mismatches(), 0u);
  for (const auto& p : probe_->pairs()) {
    // Both ends literally hold the two qubits of the same pair object.
    EXPECT_TRUE(p.same_pair_object);
  }
  net_->sim().stop();
}

TEST_F(ChainTest, DeliveredFidelityMeetsThreshold) {
  build(0.85);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 12)));
  net_->sim().run_until(net_->sim().now() + 40_s);
  ASSERT_EQ(probe_->pair_count(), 12u);
  // The routing computation is a worst-case bound, so the average
  // delivered fidelity must clear the target.
  EXPECT_GE(probe_->mean_fidelity(), 0.85);
  for (const auto& p : probe_->pairs()) EXPECT_GT(p.fidelity, 0.6);
  net_->sim().stop();
}

TEST_F(ChainTest, MemoryIsReclaimedAfterCompletion) {
  build(0.85);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 4)));
  net_->sim().run_until(net_->sim().now() + 20_s);
  ASSERT_TRUE(probe_->head_completion(RequestId{1}).has_value());
  // Let in-flight link pairs and cutoff discards drain.
  net_->sim().run_until(net_->sim().now() + 5_s);
  EXPECT_TRUE(net_->quiescent());
  net_->sim().stop();
}

TEST_F(ChainTest, FiveNodeChainWorks) {
  build(0.75, 5);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 4)));
  net_->sim().run_until(net_->sim().now() + 60_s);
  ASSERT_EQ(probe_->pair_count(), 4u);
  EXPECT_EQ(probe_->unmatched(), 0u);
  EXPECT_EQ(probe_->state_mismatches(), 0u);
  EXPECT_GE(probe_->mean_fidelity(), 0.75 - 0.05);
  net_->sim().stop();
}

TEST_F(ChainTest, MeasureRequestsDeliverCorrelatedOutcomes) {
  build(0.9);
  qnp::AppRequest r = keep_request(1, 40);
  r.type = RequestType::measure;
  r.measure_basis = qstate::Basis::z;
  // Ask for a fixed Bell frame so outcome correlations are deterministic:
  // Psi+ anti-correlates in Z.
  r.final_state = qstate::BellIndex::psi_plus();
  ASSERT_TRUE(
      net_->engine(head_).submit_request(plan_.install.circuit_id, r));
  net_->sim().run_until(net_->sim().now() + 60_s);

  ASSERT_EQ(probe_->pair_count(), 40u);
  std::size_t anti = 0;
  for (const auto& p : probe_->pairs()) {
    ASSERT_GE(p.outcome_head, 0);
    ASSERT_GE(p.outcome_tail, 0);
    if (p.outcome_head != p.outcome_tail) ++anti;
  }
  // F=0.9 target: the large majority must anti-correlate.
  EXPECT_GE(anti, 32u);
  net_->sim().stop();
}

TEST_F(ChainTest, FinalStateCorrectionDeliversRequestedBellState) {
  build(0.9);
  qnp::AppRequest r = keep_request(1, 6);
  r.final_state = qstate::BellIndex::phi_plus();
  ASSERT_TRUE(
      net_->engine(head_).submit_request(plan_.install.circuit_id, r));
  net_->sim().run_until(net_->sim().now() + 30_s);
  ASSERT_EQ(probe_->pair_count(), 6u);
  for (const auto& p : probe_->pairs()) {
    EXPECT_EQ(p.state_head, qstate::BellIndex::phi_plus());
    EXPECT_EQ(p.state_tail, qstate::BellIndex::phi_plus());
    // The physical state was rotated into the requested frame.
    EXPECT_GT(p.fidelity, 0.7);
  }
  net_->sim().stop();
}

TEST_F(ChainTest, TwoNodeCircuitDegeneratesToLinkLayer) {
  build(0.9, 2);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 5)));
  net_->sim().run_until(net_->sim().now() + 10_s);
  EXPECT_EQ(probe_->pair_count(), 5u);
  EXPECT_EQ(probe_->unmatched(), 0u);
  EXPECT_GT(probe_->mean_fidelity(), 0.85);
  net_->sim().stop();
}

TEST_F(ChainTest, SequentialRequestsShareTheCircuit) {
  build(0.85);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 3)));
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(2, 3)));
  net_->sim().run_until(net_->sim().now() + 30_s);
  EXPECT_TRUE(probe_->head_completion(RequestId{1}).has_value());
  EXPECT_TRUE(probe_->head_completion(RequestId{2}).has_value());
  EXPECT_EQ(probe_->pairs_for(RequestId{1}).size(), 3u);
  EXPECT_EQ(probe_->pairs_for(RequestId{2}).size(), 3u);
  EXPECT_EQ(probe_->unmatched(), 0u);
  net_->sim().stop();
}

TEST_F(ChainTest, DuplicateRequestIdRejected) {
  build(0.85);
  ASSERT_TRUE(net_->engine(head_).submit_request(plan_.install.circuit_id,
                                                 keep_request(1, 3)));
  std::string reason;
  EXPECT_FALSE(net_->engine(head_).submit_request(
      plan_.install.circuit_id, keep_request(1, 3), &reason));
  EXPECT_EQ(reason, "duplicate request id");
  net_->sim().stop();
}

}  // namespace
}  // namespace qnetp::netsim
