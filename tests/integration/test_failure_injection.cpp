// Failure injection: classical connectivity loss, liveness-triggered
// teardown, storage exhaustion on the near-term platform, and parameter
// sweeps over chain length.
#include <gtest/gtest.h>

#include "apps/chsh.hpp"
#include "netmsg/transport.hpp"
#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t n) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.type = netmsg::RequestType::keep;
  r.num_pairs = n;
  return r;
}

TEST(FailureInjection, LivenessLossTearsDownTheCircuit) {
  NetworkConfig config;
  config.seed = 91;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  Probe head_probe(*net, NodeId{1}, EndpointId{10});
  Probe tail_probe(*net, NodeId{3}, EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());

  // Per-hop transport liveness for the circuit.
  netmsg::TransportConnection conn(net->sim(), net->classical(),
                                   plan->install.circuit_id, NodeId{1},
                                   NodeId{2});
  netmsg::TransportConnection peer(net->sim(), net->classical(),
                                   plan->install.circuit_id, NodeId{2},
                                   NodeId{1});
  // NOTE: the production wiring dispatches inbound KEEPALIVEs through the
  // engines (which ignore them); here we listen directly for liveness.
  bool torn_down = false;
  conn.set_on_down([&] {
    torn_down = true;
    net->engine(NodeId{1}).teardown(plan->install.circuit_id,
                                    "classical connectivity lost");
  });
  conn.enable_keepalive(50_ms, 175_ms);
  peer.enable_keepalive(50_ms, 175_ms);
  // The node classical handlers are owned by the engines, so inbound
  // keepalives cannot reach these side transports; feed liveness
  // explicitly while the link is administratively up.
  bool link_up = true;
  std::function<void()> feed = [&] {
    if (link_up) {
      conn.note_alive();
      peer.note_alive();
    }
    if (!torn_down) net->sim().schedule(50_ms, feed);
  };
  net->sim().schedule(Duration::zero(), feed);

  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 10000)));
  net->sim().run_until(net->sim().now() + 1_s);
  EXPECT_FALSE(torn_down);

  // Sever the classical channel: keepalives stop, liveness fires, the
  // circuit is torn down and applications are notified.
  link_up = false;
  net->classical().set_link_up(NodeId{1}, NodeId{2}, false);
  net->sim().run_until(net->sim().now() + 1_s);
  EXPECT_TRUE(torn_down);
  // Teardown messages to downstream nodes travel over still-working
  // channels (2-3), so node 3 cleaned up; node 2 is unreachable from 1
  // but reachable from... 1-2 is down: the teardown toward 2 was dropped.
  // The head itself must be clean.
  EXPECT_FALSE(net->engine(NodeId{1}).has_circuit(plan->install.circuit_id));
  EXPECT_TRUE(head_probe.circuit_down());
  net->sim().stop();
}

TEST(FailureInjection, InstallTimeoutTearsDownThePartialPrefix) {
  // Sever the classical 3-4 channel BEFORE establishing a circuit across
  // it: the InstallMsg relays over 1-2-3 and is then dropped, so the
  // install times out with circuit state alive on a prefix of the path.
  // establish_circuit must tear that prefix back down (TEARDOWN from the
  // head trails the INSTALL on the FIFO channels), release the admitted
  // capacity, and leave the network quiescent.
  NetworkConfig config;
  config.seed = 95;
  auto net = make_chain(4, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  net->classical().set_link_up(NodeId{3}, NodeId{4}, false);

  std::string reason;
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.8, {},
      &reason, Duration::ms(500));
  EXPECT_FALSE(plan.has_value());
  EXPECT_EQ(reason, "install timeout");

  // Give any straggling messages time to settle, then audit every hop.
  net->sim().run_until(net->sim().now() + 1_s);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_FALSE(net->engine(NodeId{i}).has_circuit(CircuitId{1}))
        << "node " << i << " kept partially installed circuit state";
  }
  EXPECT_TRUE(net->quiescent());
  // The admitted capacity was released: the same circuit succeeds once
  // the channel heals.
  net->classical().set_link_up(NodeId{3}, NodeId{4}, true);
  ASSERT_TRUE(net->controller() != nullptr);
  EXPECT_EQ(net->controller()->planned_circuits(), 0u);
  const auto retry = net->establish_circuit(
      NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.8, {},
      &reason, Duration::seconds(2));
  ASSERT_TRUE(retry.has_value()) << reason;
  net->sim().stop();
}

TEST(FailureInjection, NearTermStorageExhaustionDegradesGracefully) {
  // Near-term platform with ZERO storage qubits: the repeater cannot park
  // pairs, every move fails, and no end-to-end pair can form — but the
  // system must not crash or leak, and the end nodes keep their qubits
  // until the circuit is torn down.
  NetworkConfig config;
  config.seed = 93;
  config.storage_qubits = 0;
  auto net = make_chain(3, config, qhw::near_term_preset(),
                        qhw::FiberParams::telecom(25000.0));

  netmsg::InstallMsg install;
  install.circuit_id = CircuitId{1};
  install.head_end_identifier = EndpointId{10};
  install.tail_end_identifier = EndpointId{20};
  install.end_to_end_fidelity = 0.5;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    netmsg::HopState hop;
    hop.node = NodeId{i};
    hop.upstream = (i > 1) ? NodeId{i - 1} : NodeId{};
    hop.downstream = (i < 3) ? NodeId{i + 1} : NodeId{};
    hop.upstream_label = (i > 1) ? LinkLabel{i - 1} : LinkLabel{};
    hop.downstream_label = (i < 3) ? LinkLabel{i} : LinkLabel{};
    hop.downstream_min_fidelity = (i < 3) ? 0.8 : 0.0;
    hop.downstream_max_lpr = 5.0;
    hop.circuit_max_eer = 1.0;
    hop.cutoff = 2_s;
    install.hops.push_back(hop);
  }
  net->install_manual_circuit(install);
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(CircuitId{1},
                                                    keep_request(1, 2)));
  net->sim().run_until(net->sim().now() + 30_s);
  EXPECT_EQ(probe.pair_count(), 0u);
  EXPECT_GT(
      net->engine(NodeId{2}).counters().pairs_discarded_unassigned, 0u);
  net->engine(NodeId{1}).teardown(CircuitId{1}, "test over");
  net->sim().run_until(net->sim().now() + 1_s);
  net->sim().stop();
}

// Chain-length sweep: the protocol works over 2..6 nodes; fidelity
// degrades with hop count but tracking never breaks.
class ChainLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainLength, DeliversConsistentPairs) {
  const std::size_t nodes = GetParam();
  NetworkConfig config;
  config.seed = 200 + nodes;
  auto net = make_chain(nodes, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{nodes},
                  EndpointId{20});
  // Longer chains can sustain less end-to-end fidelity.
  const double target = nodes <= 3 ? 0.85 : (nodes <= 5 ? 0.75 : 0.7);
  std::string reason;
  const auto plan =
      net->establish_circuit(NodeId{1}, NodeId{nodes}, EndpointId{10},
                             EndpointId{20}, target, {}, &reason);
  ASSERT_TRUE(plan.has_value()) << reason;
  EXPECT_EQ(plan->path.size(), nodes);
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 5)));
  net->sim().run_until(net->sim().now() + 120_s);
  ASSERT_EQ(probe.pair_count(), 5u);
  EXPECT_EQ(probe.unmatched(), 0u);
  EXPECT_EQ(probe.state_mismatches(), 0u);
  EXPECT_GE(probe.mean_fidelity(), target - 0.06);
  net->sim().stop();
}

INSTANTIATE_TEST_SUITE_P(TwoToSixNodes, ChainLength,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

// Demux policy sweep: both policies deliver consistently.
class DemuxPolicySweep
    : public ::testing::TestWithParam<qnp::DemuxPolicy> {};

TEST_P(DemuxPolicySweep, ConcurrentRequestsStayConsistent) {
  NetworkConfig config;
  config.seed = 300;
  config.qnp.demux = GetParam();
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(net->engine(NodeId{1}).submit_request(
        plan->install.circuit_id, keep_request(i, 4)));
  }
  net->sim().run_until(net->sim().now() + 60_s);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(probe.pairs_for(RequestId{i}).size(), 4u) << "request " << i;
  }
  EXPECT_EQ(probe.state_mismatches(), 0u);
  EXPECT_EQ(probe.unmatched(), 0u);
  net->sim().stop();
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, DemuxPolicySweep,
                         ::testing::Values(qnp::DemuxPolicy::fifo,
                                           qnp::DemuxPolicy::round_robin));

TEST(ChshOverNetwork, ViolatesBellInequality) {
  NetworkConfig config;
  config.seed = 97;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  apps::ChshApp chsh(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                     EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.92);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(chsh.start(plan->install.circuit_id, RequestId{1}, 400));
  net->sim().run_until(net->sim().now() + 200_s);
  ASSERT_TRUE(chsh.finished());
  EXPECT_EQ(chsh.report().pairs_consumed, 400u);
  EXPECT_GT(chsh.report().s_value(), 2.0);
  EXPECT_LT(chsh.report().s_value(), 2.0 * 1.4143);
  net->sim().stop();
}

}  // namespace
}  // namespace qnetp::netsim
