// Parameterized fidelity-target sweep: the central fidelity/rate
// trade-off (Sec. 2.3 P1 and Sec. 3.2 "class of service") across the
// whole stack — higher requested end-to-end fidelity must be honoured
// and must cost throughput.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

struct SweepResult {
  double mean_fidelity = 0.0;
  Duration completion = Duration::zero();
};

SweepResult run_target(double target, std::uint64_t seed) {
  NetworkConfig config;
  config.seed = seed;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, target);
  EXPECT_TRUE(plan.has_value());
  qnp::AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.type = netmsg::RequestType::keep;
  r.num_pairs = 15;
  EXPECT_TRUE(
      net->engine(NodeId{1}).submit_request(plan->install.circuit_id, r));
  const TimePoint start = net->sim().now();
  net->sim().run_until(start + 120_s);
  SweepResult out;
  out.mean_fidelity = probe.mean_fidelity();
  const auto done = probe.head_completion(RequestId{1});
  EXPECT_TRUE(done.has_value());
  out.completion = done.value_or(TimePoint::max()) - start;
  net->sim().stop();
  return out;
}

class FidelityTarget : public ::testing::TestWithParam<double> {};

TEST_P(FidelityTarget, DeliveredFidelityHonoursTarget) {
  const double target = GetParam();
  const SweepResult r = run_target(target, 404);
  // The worst-case routing computation should leave margin; allow a small
  // statistical tolerance on 15 pairs.
  EXPECT_GE(r.mean_fidelity, target - 0.02) << "target " << target;
  // And not wastefully overshoot into rate-starving territory: delivered
  // quality stays within ~0.1 of the request.
  EXPECT_LE(r.mean_fidelity, std::min(1.0, target + 0.12));
}

INSTANTIATE_TEST_SUITE_P(TargetGrid, FidelityTarget,
                         ::testing::Values(0.75, 0.8, 0.85, 0.9, 0.92));

TEST(FidelityRateTradeoff, HigherTargetsAreSlower) {
  const SweepResult low = run_target(0.75, 505);
  const SweepResult high = run_target(0.92, 505);
  EXPECT_GT(high.completion, low.completion * 1.5);
  EXPECT_GT(high.mean_fidelity, low.mean_fidelity);
}

}  // namespace
}  // namespace qnetp::netsim
