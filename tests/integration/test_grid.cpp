// Beyond-chain topologies: a 3x3 grid network. Repeater-chain protocols
// cannot handle such topologies (Sec. 6 "Repeater chain protocols"); the
// QNP + routing layer must pick paths and run circuits that cross at
// shared nodes and links.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

// Grid node ids: node(r, c) = r * 3 + c + 1 for r, c in 0..2.
NodeId grid_node(std::uint64_t r, std::uint64_t c) {
  return NodeId{r * 3 + c + 1};
}

std::unique_ptr<Network> make_grid3x3(std::uint64_t seed) {
  NetworkConfig config;
  config.seed = seed;
  auto net = std::make_unique<Network>(config);
  for (std::uint64_t r = 0; r < 3; ++r) {
    for (std::uint64_t c = 0; c < 3; ++c) {
      net->add_node(grid_node(r, c), qhw::simulation_preset());
    }
  }
  for (std::uint64_t r = 0; r < 3; ++r) {
    for (std::uint64_t c = 0; c < 3; ++c) {
      if (c + 1 < 3) {
        net->connect(grid_node(r, c), grid_node(r, c + 1),
                     qhw::FiberParams::lab(2.0));
      }
      if (r + 1 < 3) {
        net->connect(grid_node(r, c), grid_node(r + 1, c),
                     qhw::FiberParams::lab(2.0));
      }
    }
  }
  return net;
}

qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t n,
                             EndpointId h, EndpointId t) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = h;
  r.tail_endpoint = t;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = n;
  return r;
}

TEST(GridTopology, ShapeAndRouting) {
  auto net = make_grid3x3(11);
  EXPECT_EQ(net->topology().node_count(), 9u);
  EXPECT_EQ(net->topology().link_count(), 12u);
  // Corner to corner: 4 hops, several equal-cost paths; Dijkstra must
  // pick one of them.
  const auto path =
      net->topology().shortest_path(grid_node(0, 0), grid_node(2, 2));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  // The centre node has degree 4.
  EXPECT_EQ(net->topology().neighbours(grid_node(1, 1)).size(), 4u);
}

TEST(GridTopology, CornerToCornerCircuitDelivers) {
  auto net = make_grid3x3(13);
  DualProbe probe(*net, grid_node(0, 0), EndpointId{10}, grid_node(2, 2),
                  EndpointId{20});
  std::string reason;
  const auto plan =
      net->establish_circuit(grid_node(0, 0), grid_node(2, 2),
                             EndpointId{10}, EndpointId{20}, 0.75, {},
                             &reason);
  ASSERT_TRUE(plan.has_value()) << reason;
  EXPECT_EQ(plan->path.size(), 5u);
  ASSERT_TRUE(net->engine(grid_node(0, 0))
                  .submit_request(plan->install.circuit_id,
                                  keep_request(1, 5, EndpointId{10},
                                               EndpointId{20})));
  net->sim().run_until(net->sim().now() + 120_s);
  EXPECT_EQ(probe.pair_count(), 5u);
  EXPECT_EQ(probe.unmatched(), 0u);
  EXPECT_EQ(probe.state_mismatches(), 0u);
  EXPECT_GE(probe.mean_fidelity(), 0.7);
  net->sim().stop();
}

TEST(GridTopology, CrossingCircuitsShareTheFabric) {
  // Two circuits crossing the grid (west-east and north-south) must both
  // work even where their paths share nodes or links.
  auto net = make_grid3x3(17);
  DualProbe p1(*net, grid_node(1, 0), EndpointId{10}, grid_node(1, 2),
               EndpointId{20});
  DualProbe p2(*net, grid_node(0, 1), EndpointId{11}, grid_node(2, 1),
               EndpointId{21});
  const auto plan1 =
      net->establish_circuit(grid_node(1, 0), grid_node(1, 2),
                             EndpointId{10}, EndpointId{20}, 0.8);
  const auto plan2 =
      net->establish_circuit(grid_node(0, 1), grid_node(2, 1),
                             EndpointId{11}, EndpointId{21}, 0.8);
  ASSERT_TRUE(plan1 && plan2);
  ASSERT_TRUE(net->engine(grid_node(1, 0))
                  .submit_request(plan1->install.circuit_id,
                                  keep_request(1, 6, EndpointId{10},
                                               EndpointId{20})));
  ASSERT_TRUE(net->engine(grid_node(0, 1))
                  .submit_request(plan2->install.circuit_id,
                                  keep_request(2, 6, EndpointId{11},
                                               EndpointId{21})));
  net->sim().run_until(net->sim().now() + 120_s);
  EXPECT_EQ(p1.pair_count(), 6u);
  EXPECT_EQ(p2.pair_count(), 6u);
  EXPECT_EQ(p1.state_mismatches() + p2.state_mismatches(), 0u);
  net->sim().stop();
}

TEST(GridTopology, ManyCircuitsThroughTheCentre) {
  // Four corner-to-corner circuits all competing for the centre node's
  // links: the fabric must stay consistent under contention.
  auto net = make_grid3x3(19);
  struct Flow {
    NodeId head, tail;
    EndpointId he, te;
  };
  const Flow flows[] = {
      {grid_node(0, 0), grid_node(2, 2), EndpointId{10}, EndpointId{20}},
      {grid_node(0, 2), grid_node(2, 0), EndpointId{11}, EndpointId{21}},
      {grid_node(2, 0), grid_node(0, 2), EndpointId{12}, EndpointId{22}},
      {grid_node(2, 2), grid_node(0, 0), EndpointId{13}, EndpointId{23}},
  };
  std::vector<std::unique_ptr<DualProbe>> probes;
  std::vector<CircuitId> circuits;
  ctrl::CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;  // relieve contention
  for (const auto& f : flows) {
    probes.push_back(
        std::make_unique<DualProbe>(*net, f.head, f.he, f.tail, f.te));
    const auto plan =
        net->establish_circuit(f.head, f.tail, f.he, f.te, 0.72, options);
    ASSERT_TRUE(plan.has_value());
    circuits.push_back(plan->install.circuit_id);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(net->engine(flows[i].head)
                    .submit_request(circuits[i],
                                    keep_request(i + 1, 4, flows[i].he,
                                                 flows[i].te)));
  }
  net->sim().run_until(net->sim().now() + 300_s);
  std::size_t total = 0;
  for (const auto& p : probes) {
    total += p->pair_count();
    EXPECT_EQ(p->state_mismatches(), 0u);
  }
  // Contention may slow some flows, but the fabric must make progress on
  // most of them without any consistency violation.
  EXPECT_GE(total, 12u);
  net->sim().stop();
}

}  // namespace
}  // namespace qnetp::netsim
