// Protocol-behaviour integration tests: cutoff/EXPIRE handling, early
// delivery, request classes, policing/shaping, aggregation over the
// dumbbell, fidelity test rounds, teardown, and the protocol-mode
// ablations (baseline oracle, blocking tracking).
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;
using netmsg::RequestType;

qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t n) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.type = RequestType::keep;
  r.num_pairs = n;
  return r;
}

// ---------------------------------------------------------------------------
// Cutoff and EXPIRE.
// ---------------------------------------------------------------------------

TEST(CutoffBehaviour, ShortMemoryCausesDiscardsButDeliveryContinues) {
  NetworkConfig config;
  config.seed = 11;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 1_s;  // short memory
  auto net = make_chain(3, config, hw, qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  std::string reason;
  const auto plan =
      net->establish_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                             EndpointId{20}, 0.8, {}, &reason);
  ASSERT_TRUE(plan.has_value()) << reason;
  // Cutoff must now be tight (ms scale, not the 60 s memory's ~1 s).
  EXPECT_LT(plan->cutoff, 100_ms);

  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 10)));
  net->sim().run_until(net->sim().now() + 60_s);
  EXPECT_EQ(probe.pair_count(), 10u);
  // With a tight cutoff some pairs must have been discarded along the way.
  const auto& mid = net->engine(NodeId{2}).counters();
  EXPECT_GT(mid.pairs_discarded_cutoff, 0u);
  // And every EXPIRE bounced to an end-node released state: nothing leaks.
  net->sim().run_until(net->sim().now() + 5_s);
  EXPECT_TRUE(net->quiescent());
  net->sim().stop();
}

TEST(CutoffBehaviour, ExpireReachesEndNodesAndNoHalfPairs) {
  NetworkConfig config;
  config.seed = 13;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 0.5_s;
  auto net = make_chain(4, config, hw, qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{4},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.7);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 8)));
  net->sim().run_until(net->sim().now() + 120_s);
  EXPECT_EQ(probe.pair_count(), 8u);
  EXPECT_EQ(probe.unmatched(), 0u);
  const auto& head = net->engine(NodeId{1}).counters();
  const auto& tail = net->engine(NodeId{4}).counters();
  // Discards happened, so EXPIREs must have reached the end-nodes.
  EXPECT_GT(head.expires_received + tail.expires_received, 0u);
  net->sim().stop();
}

// ---------------------------------------------------------------------------
// Request classes: EARLY and rate-based MEASURE.
// ---------------------------------------------------------------------------

TEST(RequestClasses, EarlyDeliveryHandsQubitBeforeTracking) {
  NetworkConfig config;
  config.seed = 17;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));

  std::size_t early = 0, tracked = 0;
  std::vector<QubitId> held;
  qnp::EndpointHandlers handlers;
  handlers.on_pair = [&](const qnp::PairDelivery& d) {
    EXPECT_TRUE(d.tracking_pending);
    EXPECT_TRUE(d.qubit.valid());
    ++early;
    held.push_back(d.qubit);
  };
  handlers.on_tracking = [&](const qnp::PairDelivery& d) {
    ++tracked;
    net->engine(NodeId{1}).release_app_qubit(d.qubit);
  };
  net->engine(NodeId{1}).register_endpoint(EndpointId{10}, handlers);
  Probe tail_probe(*net, NodeId{3}, EndpointId{20});

  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());
  qnp::AppRequest r = keep_request(1, 5);
  r.type = RequestType::early;
  ASSERT_TRUE(
      net->engine(NodeId{1}).submit_request(plan->install.circuit_id, r));
  net->sim().run_until(net->sim().now() + 30_s);
  EXPECT_EQ(early, 5u);
  EXPECT_EQ(tracked, 5u);
  EXPECT_EQ(net->engine(NodeId{1}).counters().early_deliveries, 5u);
  net->sim().stop();
}

TEST(RequestClasses, RateBasedMeasureRequestStreams) {
  NetworkConfig config;
  config.seed = 19;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.8);
  ASSERT_TRUE(plan.has_value());

  qnp::AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.type = RequestType::measure;
  r.measure_basis = qstate::Basis::z;
  r.num_pairs = 0;           // rate-based: stream
  r.rate = 5.0;              // pairs/s
  std::string reason;
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    r, &reason))
      << reason;
  net->sim().run_until(net->sim().now() + 10_s);
  // A rate-based request never completes; it must keep producing.
  EXPECT_GT(probe.pair_count(), 10u);
  EXPECT_FALSE(probe.head_completion(RequestId{1}).has_value());
  for (const auto& p : probe.pairs()) {
    EXPECT_GE(p.outcome_head, 0);
    EXPECT_GE(p.outcome_tail, 0);
  }
  net->sim().stop();
}

// ---------------------------------------------------------------------------
// Policing and shaping.
// ---------------------------------------------------------------------------

TEST(Policing, RejectsImpossibleDeadline) {
  NetworkConfig config;
  config.seed = 23;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  Probe head_probe(*net, NodeId{1}, EndpointId{10});
  Probe tail_probe(*net, NodeId{3}, EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());

  // 10000 pairs in 1 s vastly exceeds the circuit's max EER.
  qnp::AppRequest r = keep_request(1, 10000);
  r.deadline = 1_s;
  std::string reason;
  EXPECT_FALSE(net->engine(NodeId{1}).submit_request(
      plan->install.circuit_id, r, &reason));
  EXPECT_EQ(reason, "insufficient end-to-end rate for deadline");
  EXPECT_EQ(net->engine(NodeId{1}).counters().requests_rejected, 1u);
  net->sim().stop();
}

TEST(Policing, ShapesDeadlinelessRequestsWhenBooked) {
  NetworkConfig config;
  config.seed = 29;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());

  // First request books the whole circuit (rate = max EER).
  qnp::AppRequest booked;
  booked.id = RequestId{1};
  booked.head_endpoint = EndpointId{10};
  booked.tail_endpoint = EndpointId{20};
  booked.type = RequestType::keep;
  booked.num_pairs = 5;
  booked.delta_t = Duration::seconds(5.0 / plan->max_eer);
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    booked));
  // Second, deadline-less request must be shaped (delayed), not rejected.
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(2, 3)));
  EXPECT_EQ(net->engine(NodeId{1}).counters().requests_shaped, 1u);

  net->sim().run_until(net->sim().now() + 60_s);
  // Both eventually complete: the shaped one starts after the first.
  ASSERT_TRUE(probe.head_completion(RequestId{1}).has_value());
  ASSERT_TRUE(probe.head_completion(RequestId{2}).has_value());
  EXPECT_GT(*probe.head_completion(RequestId{2}),
            *probe.head_completion(RequestId{1}));
  net->sim().stop();
}

// ---------------------------------------------------------------------------
// Aggregation over the dumbbell.
// ---------------------------------------------------------------------------

TEST(Aggregation, MultipleRequestsShareOneCircuitConsistently) {
  NetworkConfig config;
  config.seed = 31;
  auto net = make_dumbbell(config, qhw::simulation_preset(),
                           qhw::FiberParams::lab(2.0));
  const DumbbellIds ids;
  DualProbe probe(*net, ids.a0, EndpointId{10}, ids.b0, EndpointId{20});
  const auto plan = net->establish_circuit(ids.a0, ids.b0, EndpointId{10},
                                           EndpointId{20}, 0.8);
  ASSERT_TRUE(plan.has_value());

  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(net->engine(ids.a0).submit_request(plan->install.circuit_id,
                                                   keep_request(i, 5)));
  }
  net->sim().run_until(net->sim().now() + 120_s);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(probe.head_completion(RequestId{i}).has_value())
        << "request " << i;
    EXPECT_EQ(probe.pairs_for(RequestId{i}).size(), 5u);
  }
  EXPECT_EQ(probe.state_mismatches(), 0u);
  net->sim().stop();
}

TEST(Aggregation, TwoCircuitsShareTheBottleneck) {
  NetworkConfig config;
  config.seed = 37;
  auto net = make_dumbbell(config, qhw::simulation_preset(),
                           qhw::FiberParams::lab(2.0));
  const DumbbellIds ids;
  DualProbe p0(*net, ids.a0, EndpointId{10}, ids.b0, EndpointId{20});
  DualProbe p1(*net, ids.a1, EndpointId{11}, ids.b1, EndpointId{21});
  const auto plan0 = net->establish_circuit(ids.a0, ids.b0, EndpointId{10},
                                            EndpointId{20}, 0.8);
  const auto plan1 = net->establish_circuit(ids.a1, ids.b1, EndpointId{11},
                                            EndpointId{21}, 0.8);
  ASSERT_TRUE(plan0 && plan1);
  ASSERT_TRUE(net->engine(ids.a0).submit_request(plan0->install.circuit_id,
                                                 keep_request(1, 6)));
  ASSERT_TRUE(net->engine(ids.a1).submit_request(plan1->install.circuit_id,
                                                 keep_request(2, 6)));
  net->sim().run_until(net->sim().now() + 120_s);
  EXPECT_EQ(p0.pair_count(), 6u);
  EXPECT_EQ(p1.pair_count(), 6u);
  EXPECT_EQ(p0.state_mismatches() + p1.state_mismatches(), 0u);
  net->sim().stop();
}

// ---------------------------------------------------------------------------
// Fidelity test rounds.
// ---------------------------------------------------------------------------

TEST(TestRounds, EstimatorConvergesNearOracle) {
  NetworkConfig config;
  config.seed = 41;
  config.qnp.test_round_interval = 3;  // every 3rd pair is a test
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 120)));
  net->sim().run_until(net->sim().now() + 200_s);
  ASSERT_EQ(probe.pair_count(), 120u);

  const auto* est =
      net->engine(NodeId{1}).fidelity_estimate(plan->install.circuit_id);
  ASSERT_NE(est, nullptr);
  EXPECT_GT(est->rounds(), 20u);
  // The estimate must agree with the oracle-audited delivered fidelity.
  EXPECT_NEAR(est->estimate(), probe.mean_fidelity(), 0.1);
  EXPECT_GT(est->estimate(), 0.8);
  net->sim().stop();
}

// ---------------------------------------------------------------------------
// Teardown.
// ---------------------------------------------------------------------------

TEST(Teardown, ReleasesAllStateAndNotifiesApps) {
  NetworkConfig config;
  config.seed = 43;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  Probe head_probe(*net, NodeId{1}, EndpointId{10});
  Probe tail_probe(*net, NodeId{3}, EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 1000)));
  net->sim().run_until(net->sim().now() + 1_s);  // mid-flight
  net->engine(NodeId{1}).teardown(plan->install.circuit_id, "test teardown");
  net->sim().run_until(net->sim().now() + 1_s);

  EXPECT_TRUE(head_probe.circuit_down());
  EXPECT_TRUE(tail_probe.circuit_down());
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_FALSE(net->engine(NodeId{n}).has_circuit(plan->install.circuit_id));
  }
  EXPECT_TRUE(net->quiescent());
  net->sim().stop();
}

// ---------------------------------------------------------------------------
// Protocol-mode ablations.
// ---------------------------------------------------------------------------

TEST(ProtocolModes, BaselineOracleDiscardsLowFidelityPairs) {
  NetworkConfig config;
  config.seed = 47;
  config.qnp.decoherence = qnp::DecoherencePolicy::oracle_end_discard;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 0.8_s;  // strong decoherence
  auto net = make_chain(3, config, hw, qhw::FiberParams::lab(2.0));
  DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.8);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(net->engine(NodeId{1}).submit_request(plan->install.circuit_id,
                                                    keep_request(1, 10)));
  net->sim().run_until(net->sim().now() + 120_s);

  // No cutoffs fire in baseline mode...
  EXPECT_EQ(net->engine(NodeId{2}).counters().pairs_discarded_cutoff, 0u);
  // ...and delivered pairs pass the oracle filter.
  for (const auto& p : probe.pairs()) {
    EXPECT_GE(p.fidelity, 0.8 - 0.1);
  }
  net->sim().stop();
}

TEST(ProtocolModes, BlockingTrackingStillDeliversButSlower) {
  const auto run = [](bool lazy) {
    NetworkConfig config;
    config.seed = 53;
    config.qnp.lazy_tracking = lazy;
    auto net = make_chain(4, config, qhw::simulation_preset(),
                          qhw::FiberParams::lab(2.0));
    // Meaningful classical latency so blocking hurts.
    net->classical().set_extra_delay(2_ms);
    DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{4},
                    EndpointId{20});
    const auto plan = net->establish_circuit(
        NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.8);
    EXPECT_TRUE(plan.has_value());
    qnp::AppRequest r;
    r.id = RequestId{1};
    r.head_endpoint = EndpointId{10};
    r.tail_endpoint = EndpointId{20};
    r.type = RequestType::keep;
    r.num_pairs = 10;
    EXPECT_TRUE(
        net->engine(NodeId{1}).submit_request(plan->install.circuit_id, r));
    net->sim().run_until(net->sim().now() + 300_s);
    EXPECT_EQ(probe.pair_count(), 10u);
    const auto done = probe.head_completion(RequestId{1});
    EXPECT_TRUE(done.has_value());
    return done.value_or(TimePoint::max());
  };
  const TimePoint lazy_done = run(true);
  const TimePoint blocking_done = run(false);
  // Lazy tracking (the paper's design) completes no later than the
  // blocking alternative.
  EXPECT_LE(lazy_done, blocking_done);
}

}  // namespace
}  // namespace qnetp::netsim
