#include "linklayer/egp.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "qbase/stats.hpp"

namespace qnetp::linklayer {
namespace {

using namespace qnetp::literals;
using qdevice::PairRegistry;
using qdevice::QuantumDevice;

class EgpTest : public ::testing::Test {
 protected:
  EgpTest()
      : rng_(7),
        dev_a_(sim_, rng_, registry_, qhw::simulation_preset(), NodeId{1}),
        dev_b_(sim_, rng_, registry_, qhw::simulation_preset(), NodeId{2}),
        link_(sim_, rng_, LinkId{12}, dev_a_, dev_b_,
              qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                     qhw::FiberParams::lab(2.0))) {
    dev_a_.memory().add_link_pool(LinkId{12}, 2);
    dev_b_.memory().add_link_pool(LinkId{12}, 2);
    link_.set_delivery_handler(NodeId{1}, [this](const LinkPairDelivery& d) {
      at_a_.push_back(d);
    });
    link_.set_delivery_handler(NodeId{2}, [this](const LinkPairDelivery& d) {
      at_b_.push_back(d);
    });
    link_.set_failure_handler(
        NodeId{1}, [this](LinkLabel l, const std::string&) {
          failures_.push_back(l);
        });
    link_.set_failure_handler(NodeId{2},
                              [](LinkLabel, const std::string&) {});
  }

  /// Consume a delivered pair (protocol would swap/deliver it): free the
  /// qubits at both ends so generation can continue.
  void consume(const LinkPairDelivery& da, const LinkPairDelivery& db) {
    dev_a_.discard(da.local_qubit);
    dev_b_.discard(db.local_qubit);
    link_.poke();
  }

  des::Simulator sim_;
  Rng rng_;
  PairRegistry registry_;
  QuantumDevice dev_a_;
  QuantumDevice dev_b_;
  EgpLink link_;
  std::vector<LinkPairDelivery> at_a_;
  std::vector<LinkPairDelivery> at_b_;
  std::vector<LinkLabel> failures_;
  std::size_t consumed_ = 0;
};

TEST_F(EgpTest, FiniteRequestDeliversExactCount) {
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.9;
  req.continuous = false;
  req.num_pairs = 2;
  link_.submit(req);
  // Consume pairs as they arrive so memory frees up.
  sim_.schedule(Duration::zero(), [this] {});
  while (sim_.step()) {
    while (!at_a_.empty() && at_a_.size() == at_b_.size() &&
           at_a_.size() > consumed_) {
      consume(at_a_[consumed_], at_b_[consumed_]);
      ++consumed_;
    }
  }
  EXPECT_EQ(at_a_.size(), 2u);
  EXPECT_EQ(at_b_.size(), 2u);
  EXPECT_FALSE(link_.has_request(LinkLabel{5}));
}

TEST_F(EgpTest, DeliveryCarriesAllRequiredProperties) {
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.9;
  req.continuous = false;
  req.num_pairs = 1;
  link_.submit(req);
  sim_.run();
  ASSERT_EQ(at_a_.size(), 1u);
  ASSERT_EQ(at_b_.size(), 1u);
  const auto& da = at_a_[0];
  const auto& db = at_b_[0];
  // (i) purpose id at both ends.
  EXPECT_EQ(da.label, LinkLabel{5});
  EXPECT_EQ(db.label, LinkLabel{5});
  // (ii) same entanglement id at both ends.
  EXPECT_EQ(da.correlator, db.correlator);
  EXPECT_EQ(da.correlator.link, LinkId{12});
  // (iii) Bell state announced.
  EXPECT_EQ(da.announced, qstate::BellIndex::psi_plus());
  // (iv) fidelity honoured (oracle check).
  EXPECT_GE(da.pair->oracle_fidelity(sim_.now()), 0.9 - 0.01);
  // Distinct local qubits, same underlying pair.
  EXPECT_NE(da.local_qubit, db.local_qubit);
  EXPECT_EQ(da.pair->id(), db.pair->id());
}

TEST_F(EgpTest, CorrelatorsAreUniqueAndIncreasing) {
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.8;
  req.continuous = false;
  req.num_pairs = 4;
  link_.submit(req);
  std::uint64_t last = 0;
  while (sim_.step()) {
    while (at_a_.size() > consumed_ && at_b_.size() > consumed_) {
      EXPECT_GT(at_a_[consumed_].correlator.sequence, last);
      last = at_a_[consumed_].correlator.sequence;
      consume(at_a_[consumed_], at_b_[consumed_]);
      ++consumed_;
    }
  }
  EXPECT_EQ(at_a_.size(), 4u);
}

TEST_F(EgpTest, HigherFidelityMeansSlowerGeneration) {
  // Request F=0.8 then F=0.97: per-pair time must grow.
  DurationStats low_f, high_f;
  for (int round = 0; round < 2; ++round) {
    LinkRequest req;
    req.label = LinkLabel{static_cast<std::uint64_t>(10 + round)};
    req.min_fidelity = (round == 0) ? 0.8 : 0.97;
    req.continuous = false;
    req.num_pairs = 20;
    const TimePoint start = sim_.now();
    link_.submit(req);
    std::size_t target = at_a_.size() + 20;
    TimePoint last_start = start;
    while (at_a_.size() < target && sim_.step()) {
      while (at_a_.size() > consumed_ && at_b_.size() > consumed_) {
        ((round == 0) ? low_f : high_f).add(sim_.now() - last_start);
        last_start = sim_.now();
        consume(at_a_[consumed_], at_b_[consumed_]);
        ++consumed_;
      }
    }
  }
  ASSERT_EQ(low_f.count(), 20u);
  ASSERT_EQ(high_f.count(), 20u);
  EXPECT_GT(high_f.mean_ms(), low_f.mean_ms() * 1.5);
}

TEST_F(EgpTest, UnachievableFidelityFails) {
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.99999;
  link_.submit(req);
  EXPECT_EQ(failures_.size(), 1u);
  EXPECT_EQ(failures_[0], LinkLabel{5});
  EXPECT_FALSE(link_.has_request(LinkLabel{5}));
  sim_.run();
  EXPECT_TRUE(at_a_.empty());
}

TEST_F(EgpTest, MemoryExhaustionStallsGeneration) {
  // Continuous request but nobody consumes: after 2 pairs (pool size) the
  // link stalls instead of over-allocating.
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.9;
  req.continuous = true;
  link_.submit(req);
  sim_.run_until(TimePoint::origin() + 2_s);
  EXPECT_EQ(at_a_.size(), 2u);
  EXPECT_GT(link_.stalls(), 0u);
  // Consuming both pairs lets generation resume.
  consume(at_a_[0], at_b_[0]);
  consume(at_a_[1], at_b_[1]);
  sim_.run_until(TimePoint::origin() + 4_s);
  EXPECT_GT(at_a_.size(), 2u);
  sim_.stop();
}

TEST_F(EgpTest, CancelStopsContinuousGeneration) {
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.9;
  req.continuous = true;
  link_.submit(req);
  sim_.run_until(TimePoint::origin() + 100_ms);
  const auto count = at_a_.size();
  link_.cancel(LinkLabel{5});
  // Reserved qubits must be released by the abort.
  EXPECT_EQ(dev_a_.memory().in_use_count(),
            at_a_.size() - 0);  // only delivered pairs hold qubits
  sim_.run_until(TimePoint::origin() + 1_s);
  EXPECT_EQ(at_a_.size(), count);
  EXPECT_FALSE(link_.busy());
  sim_.stop();
}

TEST_F(EgpTest, TwoPurposesShareLinkFairly) {
  // Two circuits with equal LPR on one link: equal time share. Consume
  // everything immediately so memory never stalls.
  LinkRequest r1;
  r1.label = LinkLabel{1};
  r1.min_fidelity = 0.9;
  r1.lpr_weight = 10.0;
  LinkRequest r2 = r1;
  r2.label = LinkLabel{2};
  link_.submit(r1);
  link_.submit(r2);

  std::map<LinkLabel, int> counts;
  link_.set_delivery_handler(NodeId{1}, [&](const LinkPairDelivery& d) {
    counts[d.label]++;
    dev_a_.discard(d.local_qubit);
  });
  link_.set_delivery_handler(NodeId{2}, [&](const LinkPairDelivery& d) {
    dev_b_.discard(d.local_qubit);
    link_.poke();
  });
  sim_.run_until(TimePoint::origin() + 20_s);
  const int total = counts[LinkLabel{1}] + counts[LinkLabel{2}];
  ASSERT_GT(total, 100);
  EXPECT_NEAR(static_cast<double>(counts[LinkLabel{1}]) / total, 0.5, 0.1);
  sim_.stop();
}

TEST_F(EgpTest, MeanGenerationTimeMatchesFig5Anchor) {
  // End-to-end through the EGP machinery: F=0.95 pairs over the 2 m lab
  // link arrive with ~10 ms mean spacing when consumed immediately.
  LinkRequest req;
  req.label = LinkLabel{5};
  req.min_fidelity = 0.95;
  req.continuous = true;
  link_.submit(req);
  std::vector<double> arrivals_ms;
  link_.set_delivery_handler(NodeId{1}, [&](const LinkPairDelivery& d) {
    arrivals_ms.push_back(sim_.now().as_ms());
    dev_a_.discard(d.local_qubit);
  });
  link_.set_delivery_handler(NodeId{2}, [&](const LinkPairDelivery& d) {
    dev_b_.discard(d.local_qubit);
    link_.poke();
  });
  sim_.run_until(TimePoint::origin() + 30_s);
  ASSERT_GT(arrivals_ms.size(), 500u);
  const double mean_gap =
      arrivals_ms.back() / static_cast<double>(arrivals_ms.size());
  EXPECT_GT(mean_gap, 6.0);
  EXPECT_LT(mean_gap, 14.0);
  sim_.stop();
}

}  // namespace
}  // namespace qnetp::linklayer
