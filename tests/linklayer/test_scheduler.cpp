#include "linklayer/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "qbase/assert.hpp"

namespace qnetp::linklayer {
namespace {

using namespace qnetp::literals;

TEST(WfqScheduler, EmptyPicksNothing) {
  WfqScheduler s;
  EXPECT_FALSE(s.pick().has_value());
  EXPECT_TRUE(s.empty());
}

TEST(WfqScheduler, SingleEntryAlwaysPicked) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 2.0);
  for (int i = 0; i < 5; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    EXPECT_EQ(*p, LinkLabel{1});
    s.charge(*p, 10_ms);
  }
}

TEST(WfqScheduler, EqualWeightsAlternate) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.upsert(LinkLabel{2}, 1.0);
  std::map<LinkLabel, int> counts;
  for (int i = 0; i < 100; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    counts[*p]++;
    s.charge(*p, 10_ms);  // equal service per pick
  }
  EXPECT_EQ(counts[LinkLabel{1}], 50);
  EXPECT_EQ(counts[LinkLabel{2}], 50);
}

TEST(WfqScheduler, TimeShareProportionalToWeight) {
  // Label 2 has 3x the weight: over many equal-service picks it should be
  // served ~3x as often.
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.upsert(LinkLabel{2}, 3.0);
  std::map<LinkLabel, int> counts;
  for (int i = 0; i < 400; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    counts[*p]++;
    s.charge(*p, 10_ms);
  }
  EXPECT_NEAR(static_cast<double>(counts[LinkLabel{2}]) /
                  counts[LinkLabel{1}],
              3.0, 0.15);
}

TEST(WfqScheduler, EqualTimeShareRegardlessOfServiceCost) {
  // The paper's requirement: equal-weight circuits get equal TIME even
  // when one needs much longer per pair. Label 1 pairs take 5x longer:
  // label 2 then produces ~5x more pairs but the time split is ~50/50.
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.upsert(LinkLabel{2}, 1.0);
  double time1 = 0.0, time2 = 0.0;
  int pairs1 = 0, pairs2 = 0;
  for (int i = 0; i < 600; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    if (*p == LinkLabel{1}) {
      s.charge(*p, 50_ms);
      time1 += 50.0;
      ++pairs1;
    } else {
      s.charge(*p, 10_ms);
      time2 += 10.0;
      ++pairs2;
    }
  }
  EXPECT_NEAR(time1 / (time1 + time2), 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(pairs2) / pairs1, 5.0, 0.5);
}

TEST(WfqScheduler, NewcomerJoinsAtCurrentVirtualTime) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  for (int i = 0; i < 100; ++i) s.charge(LinkLabel{1}, 10_ms);
  s.upsert(LinkLabel{2}, 1.0);
  // The newcomer must not monopolise the link to "catch up": after one
  // pick+charge each, both should alternate.
  std::map<LinkLabel, int> counts;
  for (int i = 0; i < 20; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    counts[*p]++;
    s.charge(*p, 10_ms);
  }
  EXPECT_NEAR(counts[LinkLabel{1}], 10, 1);
  EXPECT_NEAR(counts[LinkLabel{2}], 10, 1);
}

TEST(WfqScheduler, RemoveEliminatesEntry) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.upsert(LinkLabel{2}, 1.0);
  s.remove(LinkLabel{1});
  EXPECT_FALSE(s.contains(LinkLabel{1}));
  for (int i = 0; i < 5; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    EXPECT_EQ(*p, LinkLabel{2});
    s.charge(*p, 1_ms);
  }
}

TEST(WfqScheduler, UpsertUpdatesWeight) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.upsert(LinkLabel{1}, 4.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.weight(LinkLabel{1}), 4.0);
}

TEST(WfqScheduler, ReweightRebasesVtimeToActiveFloor) {
  // Regression: a re-weighted entry used to keep the vtime accumulated
  // under its OLD weight. Label 1 is served alone for a while (vtime far
  // ahead of the floor); bumping its weight must not leave it with that
  // stale penalty once label 2 exists.
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  for (int i = 0; i < 100; ++i) s.charge(LinkLabel{1}, 10_ms);  // vtime 1.0
  s.upsert(LinkLabel{2}, 1.0);
  s.charge(LinkLabel{2}, 200_ms);  // label 2 floor: 1.2
  s.charge(LinkLabel{1}, 800_ms);  // label 1: 1.8, well ahead

  s.upsert(LinkLabel{1}, 4.0);  // weight CHANGE: rebase to floor (1.2)
  EXPECT_DOUBLE_EQ(s.vtime(LinkLabel{1}), s.vtime(LinkLabel{2}));
  // From the rebased floor, a 4x weight means ~4x the picks.
  std::map<LinkLabel, int> counts;
  for (int i = 0; i < 500; ++i) {
    const auto p = s.pick();
    ASSERT_TRUE(p);
    counts[*p]++;
    s.charge(*p, 10_ms);
  }
  EXPECT_NEAR(static_cast<double>(counts[LinkLabel{1}]) /
                  counts[LinkLabel{2}],
              4.0, 0.25);
}

TEST(WfqScheduler, ReweightForgivesStaleAdvantage) {
  // The mirror case: an entry BEHIND the floor (advantage earned under
  // the old weight) is pulled forward to the floor, so it cannot burst.
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.upsert(LinkLabel{2}, 1.0);
  s.charge(LinkLabel{2}, 900_ms);  // label 1 is far behind (vtime 0)
  s.upsert(LinkLabel{1}, 2.0);
  EXPECT_DOUBLE_EQ(s.vtime(LinkLabel{1}), s.vtime(LinkLabel{2}));
}

TEST(WfqScheduler, SameWeightUpsertKeepsVtime) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 2.0);
  s.upsert(LinkLabel{2}, 1.0);
  s.charge(LinkLabel{1}, 500_ms);
  const double before = s.vtime(LinkLabel{1});
  s.upsert(LinkLabel{1}, 2.0);  // refresh with the SAME weight: no-op
  EXPECT_DOUBLE_EQ(s.vtime(LinkLabel{1}), before);
}

TEST(WfqScheduler, ReweightAloneRebasesToZero) {
  WfqScheduler s;
  s.upsert(LinkLabel{1}, 1.0);
  s.charge(LinkLabel{1}, 700_ms);
  s.upsert(LinkLabel{1}, 3.0);  // alone: leave-and-rejoin lands at 0
  EXPECT_DOUBLE_EQ(s.vtime(LinkLabel{1}), 0.0);
  EXPECT_DOUBLE_EQ(s.weight(LinkLabel{1}), 3.0);
}

TEST(WfqScheduler, InvalidInputsAssert) {
  WfqScheduler s;
  EXPECT_THROW(s.upsert(LinkLabel{}, 1.0), AssertionError);
  EXPECT_THROW(s.upsert(LinkLabel{1}, 0.0), AssertionError);
  EXPECT_THROW(s.charge(LinkLabel{9}, 1_ms), AssertionError);
  EXPECT_THROW(s.weight(LinkLabel{9}), AssertionError);
}

}  // namespace
}  // namespace qnetp::linklayer
