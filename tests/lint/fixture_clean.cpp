// Determinism-lint fixture: must produce ZERO findings. Exercises every
// sanctioned pattern: the qbase ordered helpers, the `unordered-ok`
// annotation escape hatch (reason mandatory), point lookups, mapped-value
// iteration, and ordered containers — so the self-test fails if the
// linter ever starts over-reporting.
//
// (no expectation marker: this file must stay clean)
//
// NOT compiled into the build — consumed by scripts/determinism_lint.py
// --self-test only.
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qbase/ordered.hpp"

struct CleanTracker {
  std::unordered_map<int, double> table;
  std::unordered_set<int> members;
  std::unordered_map<int, std::vector<int>> adjacency;
  std::map<int, double> ordered_table;

  // Sanctioned: sorted snapshot of the keys.
  double sorted_walk() const {
    double sum = 0.0;
    for (const int key : qnetp::qbase::ordered_keys(table)) {
      sum += table.at(key);
    }
    return sum;
  }

  // Sanctioned: annotated order-independent reduction.
  std::size_t annotated_count() const {
    std::size_t n = 0;
    // qnetp-lint: unordered-ok(pure count, order-independent)
    for (const auto& [key, value] : table) {
      if (value > 0.0) ++n;
    }
    return n;
  }

  // Point lookups never trip the rule.
  bool lookup(int key) const {
    return table.find(key) != table.end() || members.count(key) > 0;
  }

  // Iterating a mapped VALUE (here a vector) is not iterating the map.
  int mapped_value_walk(int node) const {
    int total = 0;
    for (const int neighbour : adjacency.at(node)) total += neighbour;
    return total;
  }

  // Ordered containers iterate deterministically by definition.
  double ordered_map_walk() const {
    double sum = 0.0;
    for (const auto& [key, value] : ordered_table) sum += value;
    return sum;
  }

  // Sanctioned: drain into sorted (key, value) pairs.
  std::vector<std::pair<int, double>> drain() {
    return qnetp::qbase::drain_sorted(table);
  }
};
