// Determinism-lint fixture: pointer-keyed ordered containers and
// pointer-ordering comparators must trip the pointer-key rule. Heap
// addresses differ run to run (ASLR, allocation history), so any order
// derived from them is nondeterministic even though each single run is
// self-consistent.
//
// lint-expect: pointer-key
//
// NOT compiled into the build — consumed by scripts/determinism_lint.py
// --self-test only.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Circuit {
  int id = 0;
};

// lint: map keyed by pointer — iteration follows addresses
std::map<Circuit*, int> bad_pointer_map;

// lint: set of pointers — ordered by address
std::set<const Circuit*> bad_pointer_set;

void bad_pointer_sort(std::vector<Circuit*>& circuits) {
  std::sort(circuits.begin(), circuits.end(),
            [](const Circuit* a, const Circuit* b) {
              return a < b;  // lint: comparator orders raw pointers
            });
}
