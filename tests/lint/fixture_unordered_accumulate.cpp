// Determinism-lint fixture: unordered / unspecified-order reduction over
// floating-point values must trip the unordered-accumulate rule. FP
// addition is not associative, so an evaluation order the standard
// leaves unspecified (std::reduce, execution policies) or a hash-bucket
// order (accumulate over an unordered range) changes the low bits — and
// the digest hashes exact bit patterns.
//
// lint-expect: unordered-accumulate
//
// NOT compiled into the build — consumed by scripts/determinism_lint.py
// --self-test only.
#include <numeric>
#include <unordered_map>
#include <vector>

double bad_reduce(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);  // lint: unspecified order
}

struct RateBook {
  std::unordered_map<int, double> rates;

  double bad_accumulate() const {
    // lint: hash order feeds FP accumulation
    return std::accumulate(rates.begin(), rates.end(), 0.0,
                           [](double acc, const auto& kv) {
                             return acc + kv.second;
                           });
  }
};
