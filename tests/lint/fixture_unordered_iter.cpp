// Determinism-lint fixture: iterating a hash container without the
// qbase ordered helpers or an `unordered-ok` annotation must trip the
// unordered-iter rule — bucket order depends on hash seeding and resize
// history, so anything it feeds (digests, message emission, event posts)
// stops being reproducible.
//
// lint-expect: unordered-iter
//
// NOT compiled into the build — consumed by scripts/determinism_lint.py
// --self-test only.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Tracker {
  std::unordered_map<int, double> table;
  std::unordered_set<std::string> labels;

  double bad_range_for() const {
    double sum = 0.0;
    for (const auto& [key, value] : table) sum += value;  // lint: hash order
    return sum;
  }

  std::size_t bad_set_walk() const {
    std::size_t n = 0;
    for (const auto& label : labels) n += label.size();  // lint: hash order
    return n;
  }

  void bad_iterator_loop() {
    for (auto it = table.begin(); it != table.end(); ++it) {
      it->second *= 2.0;  // lint: visit order follows buckets
    }
  }
};

using AliasedMap = std::unordered_map<int, int>;

int bad_alias_iteration() {
  AliasedMap counts;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;  // lint: alias resolves
  return total;
}
