// Determinism-lint fixture: every line below must trip the wall-clock
// rule. Simulation code reads Simulator::now() and draws randomness from
// seeded qnetp::Rng streams; any ambient time or entropy source makes
// digests differ run to run.
//
// lint-expect: wall-clock
//
// NOT compiled into the build — consumed by scripts/determinism_lint.py
// --self-test only.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double bad_wall_clock_now() {
  const auto t = std::chrono::steady_clock::now();  // lint: monotonic clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_c_time() { return static_cast<long>(time(nullptr)); }

int bad_rand() { return rand(); }

void bad_srand() { srand(42); }

unsigned bad_random_device() {
  std::random_device rd;  // lint: nondeterministic seed source
  return rd();
}

long bad_process_clock() { return static_cast<long>(clock()); }
