#include "netmsg/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace qnetp::netmsg {
namespace {

using namespace qnetp::literals;

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : net_(sim_) {
    net_.connect(NodeId{1}, NodeId{2}, 10_us);
    net_.set_handler(NodeId{1}, [this](NodeId from, const Message& m) {
      received_at_1_.emplace_back(from, m, sim_.now());
    });
    net_.set_handler(NodeId{2}, [this](NodeId from, const Message& m) {
      received_at_2_.emplace_back(from, m, sim_.now());
    });
  }

  static Message expire(std::uint64_t seq) {
    ExpireMsg m;
    m.circuit_id = CircuitId{1};
    m.origin_correlator = PairCorrelator{LinkId{1}, seq};
    return m;
  }
  static std::uint64_t seq_of(const Message& m) {
    return std::get<ExpireMsg>(m).origin_correlator.sequence;
  }

  des::Simulator sim_;
  ClassicalNetwork net_;
  std::vector<std::tuple<NodeId, Message, TimePoint>> received_at_1_;
  std::vector<std::tuple<NodeId, Message, TimePoint>> received_at_2_;
};

TEST_F(ChannelTest, DeliversWithPropagationDelay) {
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  sim_.run();
  ASSERT_EQ(received_at_2_.size(), 1u);
  const auto& [from, msg, at] = received_at_2_[0];
  EXPECT_EQ(from, NodeId{1});
  EXPECT_EQ(seq_of(msg), 1u);
  EXPECT_EQ(at, TimePoint::origin() + 10_us);
}

TEST_F(ChannelTest, BidirectionalChannel) {
  net_.send(NodeId{2}, NodeId{1}, expire(5));
  sim_.run();
  ASSERT_EQ(received_at_1_.size(), 1u);
  EXPECT_EQ(std::get<0>(received_at_1_[0]), NodeId{2});
}

TEST_F(ChannelTest, FifoOrderPreserved) {
  for (std::uint64_t i = 0; i < 10; ++i)
    net_.send(NodeId{1}, NodeId{2}, expire(i));
  sim_.run();
  ASSERT_EQ(received_at_2_.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_EQ(seq_of(std::get<1>(received_at_2_[i])), i);
}

TEST_F(ChannelTest, FifoPreservedWhenDelayShrinksMidFlight) {
  // First message sent with a large extra delay; second with none. The
  // second must NOT overtake the first.
  net_.set_extra_delay(1_ms);
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  net_.set_extra_delay(Duration::zero());
  net_.send(NodeId{1}, NodeId{2}, expire(2));
  sim_.run();
  ASSERT_EQ(received_at_2_.size(), 2u);
  EXPECT_EQ(seq_of(std::get<1>(received_at_2_[0])), 1u);
  EXPECT_EQ(seq_of(std::get<1>(received_at_2_[1])), 2u);
  // Second message delivered no earlier than the first.
  EXPECT_GE(std::get<2>(received_at_2_[1]), std::get<2>(received_at_2_[0]));
}

TEST_F(ChannelTest, ExtraAndProcessingDelaysAdd) {
  net_.set_processing_delay(5_us);
  net_.set_extra_delay(100_us);
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  sim_.run();
  ASSERT_EQ(received_at_2_.size(), 1u);
  EXPECT_EQ(std::get<2>(received_at_2_[0]),
            TimePoint::origin() + 10_us + 5_us + 100_us);
}

TEST_F(ChannelTest, DownLinkDropsMessages) {
  net_.set_link_up(NodeId{1}, NodeId{2}, false);
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  sim_.run();
  EXPECT_TRUE(received_at_2_.empty());
  EXPECT_EQ(net_.messages_dropped(), 1u);
  net_.set_link_up(NodeId{1}, NodeId{2}, true);
  net_.send(NodeId{1}, NodeId{2}, expire(2));
  sim_.run();
  EXPECT_EQ(received_at_2_.size(), 1u);
}

TEST_F(ChannelTest, UnknownChannelAsserts) {
  EXPECT_THROW(net_.send(NodeId{1}, NodeId{99}, expire(1)), AssertionError);
}

TEST_F(ChannelTest, StatsCountBytesAndMessages) {
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  net_.send(NodeId{2}, NodeId{1}, expire(2));
  sim_.run();
  EXPECT_EQ(net_.messages_delivered(), 2u);
  EXPECT_GT(net_.bytes_carried(), 0u);
}

TEST_F(ChannelTest, HandlerRemovedMidFlightCountsDrop) {
  // A node tearing down while messages are on the wire is a race, not a
  // programming error: the in-flight message is dropped on arrival.
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  net_.clear_handler(NodeId{2});
  sim_.run();
  EXPECT_TRUE(received_at_2_.empty());
  EXPECT_EQ(net_.messages_dropped(), 1u);
  EXPECT_EQ(net_.messages_delivered(), 0u);
  // Reinstalling a handler resumes delivery.
  net_.set_handler(NodeId{2}, [this](NodeId from, const Message& m) {
    received_at_2_.emplace_back(from, m, sim_.now());
  });
  net_.send(NodeId{1}, NodeId{2}, expire(2));
  sim_.run();
  EXPECT_EQ(received_at_2_.size(), 1u);
}

TEST_F(ChannelTest, ReconnectPreservesFifoFloor) {
  // First message in flight with 1 ms extra delay; then the link is
  // re-connected with a shorter propagation and another message sent.
  // The second must not overtake the first.
  net_.set_extra_delay(1_ms);
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  net_.set_extra_delay(Duration::zero());
  net_.connect(NodeId{1}, NodeId{2}, 1_us);  // re-connect, faster link
  net_.send(NodeId{1}, NodeId{2}, expire(2));
  sim_.run();
  ASSERT_EQ(received_at_2_.size(), 2u);
  EXPECT_EQ(seq_of(std::get<1>(received_at_2_[0])), 1u);
  EXPECT_EQ(seq_of(std::get<1>(received_at_2_[1])), 2u);
  EXPECT_GE(std::get<2>(received_at_2_[1]), std::get<2>(received_at_2_[0]));
}

TEST_F(ChannelTest, ReconnectUpdatesPropagationAndRevivesLink) {
  net_.set_link_up(NodeId{1}, NodeId{2}, false);
  net_.connect(NodeId{1}, NodeId{2}, 20_us);  // re-connect brings it up
  net_.send(NodeId{1}, NodeId{2}, expire(1));
  sim_.run();
  ASSERT_EQ(received_at_2_.size(), 1u);
  EXPECT_EQ(std::get<2>(received_at_2_[0]), TimePoint::origin() + 20_us);
}

TEST_F(ChannelTest, ConnectivityQuery) {
  EXPECT_TRUE(net_.connected(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(net_.connected(NodeId{2}, NodeId{1}));
  EXPECT_FALSE(net_.connected(NodeId{1}, NodeId{3}));
}

}  // namespace
}  // namespace qnetp::netmsg
