#include "netmsg/codec.hpp"

#include <gtest/gtest.h>

#include "qbase/rng.hpp"

namespace qnetp::netmsg {
namespace {

using namespace qnetp::literals;
using qstate::Basis;
using qstate::BellIndex;

template <typename T>
T round_trip(const T& msg) {
  const Bytes wire = encode(Message{msg});
  const Message decoded = decode(wire);
  EXPECT_TRUE(std::holds_alternative<T>(decoded));
  return std::get<T>(decoded);
}

TEST(Codec, ForwardRoundTrip) {
  ForwardMsg m;
  m.circuit_id = CircuitId{7};
  m.request_id = RequestId{42};
  m.head_end_identifier = EndpointId{1};
  m.tail_end_identifier = EndpointId{2};
  m.request_type = RequestType::measure;
  m.measure_basis = Basis::x;
  m.number_of_pairs = 100;
  m.final_state = BellIndex::phi_minus();
  m.rate = 12.5;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, ForwardWithoutOptionalFields) {
  ForwardMsg m;
  m.circuit_id = CircuitId{1};
  m.request_id = RequestId{2};
  m.head_end_identifier = EndpointId{3};
  m.tail_end_identifier = EndpointId{4};
  m.request_type = RequestType::keep;
  m.number_of_pairs = 0;  // rate request
  m.final_state = std::nullopt;
  m.rate = 3.0;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, CompleteRoundTrip) {
  CompleteMsg m;
  m.circuit_id = CircuitId{9};
  m.request_id = RequestId{10};
  m.head_end_identifier = EndpointId{11};
  m.tail_end_identifier = EndpointId{12};
  m.rate = 0.25;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, TrackRoundTrip) {
  TrackMsg m;
  m.circuit_id = CircuitId{3};
  m.request_id = RequestId{4};
  m.head_end_identifier = EndpointId{5};
  m.tail_end_identifier = EndpointId{6};
  m.origin_correlator = PairCorrelator{LinkId{1}, 17};
  m.link_correlator = PairCorrelator{LinkId{2}, 99};
  m.outcome_state = BellIndex::psi_minus();
  m.epoch = 1234;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, ExpireRoundTrip) {
  ExpireMsg m;
  m.circuit_id = CircuitId{5};
  m.origin_correlator = PairCorrelator{LinkId{8}, 3};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, InstallRoundTripWithHops) {
  InstallMsg m;
  m.circuit_id = CircuitId{77};
  m.head_end_identifier = EndpointId{1};
  m.tail_end_identifier = EndpointId{2};
  m.end_to_end_fidelity = 0.9;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    HopState h;
    h.node = NodeId{i};
    h.upstream = (i > 1) ? NodeId{i - 1} : NodeId{};
    h.downstream = (i < 4) ? NodeId{i + 1} : NodeId{};
    h.upstream_label = LinkLabel{100 + i};
    h.downstream_label = LinkLabel{200 + i};
    h.downstream_min_fidelity = 0.95 + 0.001 * static_cast<double>(i);
    h.downstream_max_lpr = 50.0;
    h.circuit_max_eer = 5.0;
    h.cutoff = 30_ms;
    m.hops.push_back(h);
  }
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, InstallAckAndTeardownRoundTrip) {
  InstallAckMsg a;
  a.circuit_id = CircuitId{1};
  a.accepted = false;
  a.reason = "no capacity";
  EXPECT_EQ(round_trip(a), a);

  TeardownMsg t;
  t.circuit_id = CircuitId{2};
  t.reason = "liveness lost";
  EXPECT_EQ(round_trip(t), t);
}

TEST(Codec, KeepaliveRoundTrip) {
  KeepaliveMsg k;
  k.circuit_id = CircuitId{6};
  EXPECT_EQ(round_trip(k), k);
}

TEST(Codec, LsaRoundTrip) {
  LsaMsg m;
  m.origin = NodeId{5};
  m.seq = 987654321;
  m.max_age = 1600_ms;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    LsaLink l;
    l.neighbour = NodeId{10 + i};
    l.link = LinkId{20 + i};
    l.cost = 1.0 + 0.5 * static_cast<double>(i);
    l.max_lpr = 1234.5 * static_cast<double>(i);
    l.fidelity = 0.97;
    l.residual_slots = static_cast<std::uint32_t>(i);
    m.links.push_back(l);
  }
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, LsaUnlimitedSlotsRoundTrip) {
  LsaMsg m;
  m.origin = NodeId{1};
  m.seq = 1;
  m.max_age = 1_s;
  LsaLink l;
  l.neighbour = NodeId{2};
  l.link = LinkId{1};
  l.residual_slots = LsaLink::kUnlimitedSlots;
  m.links.push_back(l);
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, LsaEmptyLinksRoundTrip) {
  // A node with every adjacency severed still originates (that emptiness
  // is the news).
  LsaMsg m;
  m.origin = NodeId{3};
  m.seq = 44;
  m.max_age = 500_ms;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, UpdateRoundTrip) {
  UpdateMsg m;
  m.circuit_id = CircuitId{12};
  m.version = 3;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    UpdateHop h;
    h.node = NodeId{i};
    h.downstream_max_lpr = (i < 4) ? 80.0 / static_cast<double>(i) : 0.0;
    h.circuit_max_eer = 7.5;
    m.hops.push_back(h);
  }
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, UnknownTypeRejected) {
  Bytes junk{0xEE, 0x01, 0x02};
  EXPECT_THROW(decode(junk), CodecError);
}

TEST(Codec, TruncatedMessageRejected) {
  ForwardMsg m;
  m.circuit_id = CircuitId{7};
  m.request_id = RequestId{42};
  m.head_end_identifier = EndpointId{1};
  m.tail_end_identifier = EndpointId{2};
  Bytes wire = encode(Message{m});
  wire.resize(wire.size() / 2);
  EXPECT_THROW(decode(wire), CodecError);
}

TEST(Codec, TrailingGarbageRejected) {
  ExpireMsg m;
  m.circuit_id = CircuitId{5};
  m.origin_correlator = PairCorrelator{LinkId{8}, 3};
  Bytes wire = encode(Message{m});
  wire.push_back(0x00);
  EXPECT_THROW(decode(wire), CodecError);
}

TEST(Codec, BadEnumValuesRejected) {
  ForwardMsg m;
  m.circuit_id = CircuitId{7};
  m.request_id = RequestId{42};
  m.head_end_identifier = EndpointId{1};
  m.tail_end_identifier = EndpointId{2};
  Bytes wire = encode(Message{m});
  // Byte layout: type(1) + 4x u64 ids (32) -> request_type at offset 33.
  wire[33] = 9;
  EXPECT_THROW(decode(wire), CodecError);
}

TEST(Codec, MessageNames) {
  EXPECT_EQ(message_name(Message{ForwardMsg{}}), "FORWARD");
  EXPECT_EQ(message_name(Message{TrackMsg{}}), "TRACK");
  EXPECT_EQ(message_name(Message{ExpireMsg{}}), "EXPIRE");
  EXPECT_EQ(message_name(Message{KeepaliveMsg{}}), "KEEPALIVE");
  EXPECT_EQ(message_name(Message{LsaMsg{}}), "LSA");
  EXPECT_EQ(message_name(Message{UpdateMsg{}}), "UPDATE");
}

TEST(Codec, FrameRoundTrip) {
  FrameMsg m;
  m.seq = 17;
  m.ack = 9;
  m.payload = encode(Message{ExpireMsg{}});
  EXPECT_EQ(round_trip(m), m);
  FrameMsg pure_ack;
  pure_ack.ack = 41;
  EXPECT_EQ(round_trip(pure_ack), pure_ack);
}

TEST(Codec, FrameChecksumRejectsMutation) {
  FrameMsg m;
  m.seq = 5;
  m.ack = 3;
  m.payload = encode(Message{KeepaliveMsg{}});
  const Bytes wire = encode(Message{m});
  // Every single-byte mutation anywhere in the frame — header, payload,
  // or the checksum itself — must fail to decode: a mutated frame that
  // decoded would falsely acknowledge unsent sequence numbers.
  for (std::size_t i = 1; i < wire.size(); ++i) {
    for (std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      Bytes mutated = wire;
      mutated[i] ^= flip;
      EXPECT_THROW(decode(mutated), CodecError)
          << "byte " << i << " flip " << int{flip} << " decoded";
    }
  }
}

/// One representative of every wire message type, with enough fields set
/// to exercise the optional/variable-length paths.
std::vector<Message> all_message_kinds() {
  std::vector<Message> all;
  {
    ForwardMsg m;
    m.circuit_id = CircuitId{7};
    m.request_id = RequestId{42};
    m.head_end_identifier = EndpointId{1};
    m.tail_end_identifier = EndpointId{2};
    m.request_type = RequestType::measure;
    m.measure_basis = Basis::x;
    m.number_of_pairs = 4;
    m.final_state = BellIndex::phi_minus();
    m.rate = 12.5;
    all.emplace_back(m);
  }
  {
    CompleteMsg m;
    m.circuit_id = CircuitId{9};
    m.request_id = RequestId{10};
    m.head_end_identifier = EndpointId{11};
    m.tail_end_identifier = EndpointId{12};
    m.rate = 0.25;
    all.emplace_back(m);
  }
  {
    TrackMsg m;
    m.circuit_id = CircuitId{3};
    m.origin_correlator = PairCorrelator{LinkId{4}, 77};
    m.link_correlator = PairCorrelator{LinkId{5}, 78};
    m.request_id = RequestId{6};
    m.pair_sequence = 2;
    all.emplace_back(m);
  }
  {
    ExpireMsg m;
    m.circuit_id = CircuitId{5};
    m.origin_correlator = PairCorrelator{LinkId{8}, 3};
    all.emplace_back(m);
  }
  {
    InstallMsg m;
    m.circuit_id = CircuitId{21};
    all.emplace_back(m);
  }
  all.emplace_back(InstallAckMsg{});
  all.emplace_back(TeardownMsg{});
  all.emplace_back(KeepaliveMsg{});
  all.emplace_back(TestResultMsg{});
  {
    LsaMsg m;
    m.origin = NodeId{3};
    m.seq = 12;
    all.emplace_back(m);
  }
  all.emplace_back(UpdateMsg{});
  {
    FrameMsg m;
    m.seq = 2;
    m.ack = 1;
    m.payload = encode(Message{ExpireMsg{}});
    all.emplace_back(m);
  }
  return all;
}

TEST(Codec, MutationFuzzAllMessageTypes) {
  // Decode of a mutated-but-well-formed-looking frame must never crash,
  // loop, or corrupt memory: either it throws CodecError or it yields a
  // structurally usable message (re-encodable without throwing).
  const std::vector<Message> kinds = all_message_kinds();
  EXPECT_EQ(kinds.size(), std::variant_size_v<Message>);
  Rng rng(777);
  for (const Message& original : kinds) {
    const Bytes wire = encode(original);
    for (int trial = 0; trial < 400; ++trial) {
      Bytes mutated = wire;
      const std::size_t flips = 1 + rng.uniform_int(3);
      for (std::size_t f = 0; f < flips; ++f) {
        mutated[rng.uniform_int(mutated.size())] ^=
            static_cast<std::uint8_t>(1 + rng.uniform_int(255));
      }
      if (mutated == wire) continue;
      try {
        const Message decoded = decode(mutated);
        (void)message_name(decoded);
        (void)encode(decoded);
      } catch (const CodecError&) {
        // expected for most mutations
      }
    }
  }
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.uniform_int(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    try {
      const Message m = decode(junk);
      (void)message_name(m);  // decoded fine: must be usable
    } catch (const CodecError&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace qnetp::netmsg
