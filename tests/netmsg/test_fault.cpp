// Fault-injection battery for ClassicalNetwork: determinism of the
// per-channel fault streams, each fault class observable in the counter
// snapshot, conservation of the counters, and the inert-profile
// guarantee (no profile == reliable fabric, byte for byte).
#include <gtest/gtest.h>

#include <vector>

#include "netmsg/channel.hpp"
#include "netmsg/fault.hpp"

namespace qnetp::netmsg {
namespace {

using namespace qnetp::literals;

Message expire(std::uint64_t seq) {
  ExpireMsg m;
  m.circuit_id = CircuitId{1};
  m.origin_correlator = PairCorrelator{LinkId{1}, seq};
  return m;
}

std::uint64_t seq_of(const Message& m) {
  return std::get<ExpireMsg>(m).origin_correlator.sequence;
}

/// One directed lane 1 -> 2 under `profile`; returns the delivered
/// sequence numbers in arrival order plus the final stats snapshot.
struct LaneRun {
  std::vector<std::uint64_t> arrivals;
  NetworkStats stats;
};

LaneRun run_lane(const FaultProfile& profile, std::size_t n_messages) {
  des::Simulator sim;
  ClassicalNetwork net(sim);
  if (profile.active()) net.set_fault_profile(profile);
  net.connect(NodeId{1}, NodeId{2}, 10_us);
  LaneRun run;
  net.set_handler(NodeId{2}, [&run](NodeId, const Message& m) {
    run.arrivals.push_back(seq_of(m));
  });
  net.set_handler(NodeId{1}, [](NodeId, const Message&) {});
  for (std::uint64_t i = 1; i <= n_messages; ++i) {
    net.send(NodeId{1}, NodeId{2}, expire(i));
  }
  sim.run();
  run.stats = net.stats();
  return run;
}

TEST(Fault, InertProfileIsNotActive) {
  EXPECT_FALSE(FaultProfile{}.active());
  FaultProfile drop;
  drop.drop = 0.1;
  EXPECT_TRUE(drop.active());
  FaultProfile jitter;
  jitter.jitter = 1_us;
  EXPECT_TRUE(jitter.active());
}

TEST(Fault, SameSeedSameFaultPattern) {
  FaultProfile p;
  p.drop = 0.1;
  p.duplicate = 0.1;
  p.reorder = 0.2;
  p.corrupt = 0.05;
  p.jitter = 500_us;
  p.seed = 42;
  const LaneRun a = run_lane(p, 200);
  const LaneRun b = run_lane(p, 200);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.stats.total.delivered, b.stats.total.delivered);
  EXPECT_EQ(a.stats.total.dropped_fault, b.stats.total.dropped_fault);
  EXPECT_EQ(a.stats.total.duplicated, b.stats.total.duplicated);
  EXPECT_EQ(a.stats.total.corrupted, b.stats.total.corrupted);
  EXPECT_EQ(a.stats.total.reordered, b.stats.total.reordered);
}

TEST(Fault, DifferentSeedDifferentFaultPattern) {
  FaultProfile p;
  p.drop = 0.2;
  p.reorder = 0.3;
  p.seed = 1;
  FaultProfile q = p;
  q.seed = 2;
  const LaneRun a = run_lane(p, 300);
  const LaneRun b = run_lane(q, 300);
  EXPECT_NE(a.arrivals, b.arrivals);
}

TEST(Fault, DropLosesMessagesAndCountsThem) {
  FaultProfile p;
  p.drop = 0.3;
  const LaneRun run = run_lane(p, 500);
  EXPECT_GT(run.stats.total.dropped_fault, 0u);
  EXPECT_EQ(run.arrivals.size() + run.stats.total.dropped_fault, 500u);
}

TEST(Fault, DuplicateDeliversExtraCopies) {
  FaultProfile p;
  p.duplicate = 0.3;
  const LaneRun run = run_lane(p, 500);
  EXPECT_GT(run.stats.total.duplicated, 0u);
  EXPECT_EQ(run.arrivals.size(), 500u + run.stats.total.duplicated);
}

TEST(Fault, CorruptionSurfacesAsDecodeErrorsNotCrashes) {
  FaultProfile p;
  p.corrupt = 0.5;
  const LaneRun run = run_lane(p, 500);
  EXPECT_GT(run.stats.total.corrupted, 0u);
  // A single flipped byte usually breaks the decode, but some mutations
  // land in don't-care positions; every corrupted copy either decodes or
  // is counted, never thrown past the event loop.
  EXPECT_LE(run.stats.total.decode_errors, run.stats.total.corrupted);
  EXPECT_EQ(run.arrivals.size() + run.stats.total.decode_errors, 500u);
}

TEST(Fault, ReorderBreaksFifo) {
  FaultProfile p;
  p.reorder = 0.5;
  p.reorder_window = 5_ms;  // >> 10us propagation: overtakes guaranteed
  const LaneRun run = run_lane(p, 200);
  EXPECT_GT(run.stats.total.reordered, 0u);
  ASSERT_EQ(run.arrivals.size(), 200u);
  EXPECT_FALSE(std::is_sorted(run.arrivals.begin(), run.arrivals.end()));
}

TEST(Fault, InertProfileKeepsFifoAndConservation) {
  const LaneRun run = run_lane(FaultProfile{}, 100);
  ASSERT_EQ(run.arrivals.size(), 100u);
  EXPECT_TRUE(std::is_sorted(run.arrivals.begin(), run.arrivals.end()));
  EXPECT_EQ(run.stats.total.dropped_fault, 0u);
  EXPECT_EQ(run.stats.total.duplicated, 0u);
  EXPECT_EQ(run.stats.total.in_flight(), 0u);
}

TEST(Fault, ConservationHoldsUnderAllFaultClasses) {
  FaultProfile p;
  p.drop = 0.1;
  p.duplicate = 0.15;
  p.reorder = 0.2;
  p.corrupt = 0.1;
  p.jitter = 200_us;
  const LaneRun run = run_lane(p, 1000);
  const ChannelStats& t = run.stats.total;
  // Quiescent fabric: sent + duplicated == delivered + dropped().
  EXPECT_EQ(t.in_flight(), 0u);
  EXPECT_EQ(t.sent + t.duplicated, t.delivered + t.dropped());
  EXPECT_EQ(t.delivered, run.arrivals.size());
  // Per-channel rows sum to the aggregate.
  ChannelStats sum;
  for (const auto& [key, s] : run.stats.channels) sum += s;
  EXPECT_EQ(sum.sent, t.sent);
  EXPECT_EQ(sum.delivered, t.delivered);
}

TEST(Fault, ChannelsHaveIndependentStreams) {
  // Two directed lanes under the same profile must not mirror each
  // other's fault decisions.
  des::Simulator sim;
  ClassicalNetwork net(sim);
  FaultProfile p;
  p.drop = 0.4;
  net.set_fault_profile(p);
  net.connect(NodeId{1}, NodeId{2}, 10_us);
  net.connect(NodeId{1}, NodeId{3}, 10_us);
  net.set_handler(NodeId{2}, [](NodeId, const Message&) {});
  net.set_handler(NodeId{3}, [](NodeId, const Message&) {});
  net.set_handler(NodeId{1}, [](NodeId, const Message&) {});
  for (std::uint64_t i = 1; i <= 200; ++i) {
    net.send(NodeId{1}, NodeId{2}, expire(i));
    net.send(NodeId{1}, NodeId{3}, expire(i));
  }
  sim.run();
  const auto stats = net.stats();
  const auto& to2 = stats.channels.at({NodeId{1}, NodeId{2}});
  const auto& to3 = stats.channels.at({NodeId{1}, NodeId{3}});
  EXPECT_GT(to2.dropped_fault, 0u);
  EXPECT_GT(to3.dropped_fault, 0u);
  EXPECT_NE(to2.dropped_fault, to3.dropped_fault);
}

TEST(Fault, LinkDownStillCountsSeparately) {
  des::Simulator sim;
  ClassicalNetwork net(sim);
  FaultProfile p;
  p.drop = 0.5;
  net.set_fault_profile(p);
  net.connect(NodeId{1}, NodeId{2}, 10_us);
  net.set_handler(NodeId{2}, [](NodeId, const Message&) {});
  net.set_link_up(NodeId{1}, NodeId{2}, false);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    net.send(NodeId{1}, NodeId{2}, expire(i));
  }
  sim.run();
  const auto t = net.stats().total;
  EXPECT_EQ(t.dropped_down, 50u);
  EXPECT_EQ(t.dropped_fault, 0u);  // down beats the fault draw
  EXPECT_EQ(t.delivered, 0u);
}

}  // namespace
}  // namespace qnetp::netmsg
