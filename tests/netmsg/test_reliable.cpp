// ReliableEndpoint battery: exactly-once in-order delivery over faulty
// channels, the retransmission backoff ladder and its DES timer
// cancellation, and the dead-peer verdict that converts a silent
// partition into an explicit adjacency loss.
#include <gtest/gtest.h>

#include <vector>

#include "netmsg/channel.hpp"
#include "netmsg/fault.hpp"
#include "netmsg/transport.hpp"

namespace qnetp::netmsg {
namespace {

using namespace qnetp::literals;

Message expire(std::uint64_t seq) {
  ExpireMsg m;
  m.circuit_id = CircuitId{1};
  m.origin_correlator = PairCorrelator{LinkId{1}, seq};
  return m;
}

std::uint64_t seq_of(const Message& m) {
  return std::get<ExpireMsg>(m).origin_correlator.sequence;
}

/// Two nodes, two endpoints, one channel; faults optional.
class ReliableTest : public ::testing::Test {
 protected:
  void build(const FaultProfile& faults, ReliableConfig config = [] {
    ReliableConfig c;
    c.enabled = true;
    return c;
  }()) {
    net_ = std::make_unique<ClassicalNetwork>(sim_);
    if (faults.active()) net_->set_fault_profile(faults);
    net_->connect(NodeId{1}, NodeId{2}, 10_us);
    a_ = std::make_unique<ReliableEndpoint>(sim_, *net_, NodeId{1}, config);
    b_ = std::make_unique<ReliableEndpoint>(sim_, *net_, NodeId{2}, config);
    net_->set_handler(NodeId{1}, [this](NodeId from, const Message& m) {
      a_->on_message(from, m);
    });
    net_->set_handler(NodeId{2}, [this](NodeId from, const Message& m) {
      b_->on_message(from, m);
    });
    a_->set_deliver([this](NodeId, const Message& m) {
      at_a_.push_back(seq_of(m));
    });
    b_->set_deliver([this](NodeId, const Message& m) {
      at_b_.push_back(seq_of(m));
    });
  }

  des::Simulator sim_;
  std::unique_ptr<ClassicalNetwork> net_;
  std::unique_ptr<ReliableEndpoint> a_, b_;
  std::vector<std::uint64_t> at_a_, at_b_;
};

std::vector<std::uint64_t> iota(std::uint64_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = i + 1;
  return v;
}

TEST_F(ReliableTest, CleanChannelDeliversInOrder) {
  build(FaultProfile{});
  for (std::uint64_t i = 1; i <= 20; ++i) a_->send(NodeId{2}, expire(i));
  sim_.run();
  EXPECT_EQ(at_b_, iota(20));
  EXPECT_EQ(a_->stats().retransmits, 0u);
  EXPECT_EQ(a_->unacked(NodeId{2}), 0u);
  EXPECT_FALSE(a_->retransmit_armed(NodeId{2}));
}

TEST_F(ReliableTest, ExactlyOnceInOrderUnderDropDupReorder) {
  FaultProfile p;
  p.drop = 0.15;
  p.duplicate = 0.15;
  p.reorder = 0.3;
  p.corrupt = 0.05;
  p.jitter = 100_us;
  ReliableConfig config;
  config.enabled = true;
  config.max_retries = 40;  // loss is heavy; a dead verdict is not the point
  build(p, config);
  for (std::uint64_t i = 1; i <= 100; ++i) a_->send(NodeId{2}, expire(i));
  sim_.run();
  // Every payload exactly once, original order restored, losses repaired
  // by retransmission.
  EXPECT_EQ(at_b_, iota(100));
  EXPECT_GT(a_->stats().retransmits, 0u);
  EXPECT_EQ(a_->unacked(NodeId{2}), 0u);
}

TEST_F(ReliableTest, BidirectionalConversationsAreIndependent) {
  FaultProfile p;
  p.drop = 0.1;
  p.reorder = 0.2;
  build(p);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    a_->send(NodeId{2}, expire(i));
    b_->send(NodeId{1}, expire(100 + i));
  }
  sim_.run();
  EXPECT_EQ(at_b_, iota(50));
  std::vector<std::uint64_t> expect_a(50);
  for (std::uint64_t i = 0; i < 50; ++i) expect_a[i] = 101 + i;
  EXPECT_EQ(at_a_, expect_a);
}

TEST_F(ReliableTest, DeadPeerVerdictAfterBackoffLadder) {
  build(FaultProfile{});
  std::vector<std::pair<NodeId, TimePoint>> verdicts;
  a_->set_on_peer_dead([this, &verdicts](NodeId peer) {
    verdicts.emplace_back(peer, sim_.now());
  });
  net_->set_link_up(NodeId{1}, NodeId{2}, false);
  const TimePoint sent_at = sim_.now();
  a_->send(NodeId{2}, expire(1));
  sim_.run();
  // Defaults: rto 10ms doubling to the 160ms cap. Firings at 10, 30, 70,
  // 150, 310, 470, 630, 790ms retransmit; the 9th at 950ms is the
  // verdict.
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].first, NodeId{2});
  EXPECT_EQ(verdicts[0].second, sent_at + 950_ms);
  EXPECT_EQ(a_->stats().retransmits, 8u);
  EXPECT_EQ(a_->stats().dead_verdicts, 1u);
  EXPECT_TRUE(a_->peer_dead(NodeId{2}));
  EXPECT_FALSE(a_->retransmit_armed(NodeId{2}));
}

TEST_F(ReliableTest, VerdictFiresOnceAndSendsAreDroppedAfterIt) {
  build(FaultProfile{});
  std::size_t fired = 0;
  a_->set_on_peer_dead([&fired](NodeId) { ++fired; });
  net_->set_link_up(NodeId{1}, NodeId{2}, false);
  for (std::uint64_t i = 1; i <= 5; ++i) a_->send(NodeId{2}, expire(i));
  sim_.run();
  EXPECT_EQ(fired, 1u);
  // Post-verdict sends are dropped without restarting the ladder.
  a_->send(NodeId{2}, expire(99));
  sim_.run();
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(a_->stats().dead_verdicts, 1u);
  EXPECT_EQ(a_->unacked(NodeId{2}), 0u);
}

TEST_F(ReliableTest, AckProgressCancelsTimerEagerly) {
  build(FaultProfile{});
  a_->send(NodeId{2}, expire(1));
  EXPECT_TRUE(a_->retransmit_armed(NodeId{2}));
  sim_.run();
  // Fully acknowledged: the timer must be cancelled, not left to fire
  // into an empty queue.
  EXPECT_EQ(a_->unacked(NodeId{2}), 0u);
  EXPECT_FALSE(a_->retransmit_armed(NodeId{2}));
  EXPECT_EQ(a_->stats().retransmits, 0u);
}

TEST_F(ReliableTest, BackoffResetsAfterAckProgress) {
  build(FaultProfile{});
  std::vector<std::pair<NodeId, TimePoint>> verdicts;
  a_->set_on_peer_dead([this, &verdicts](NodeId peer) {
    verdicts.emplace_back(peer, sim_.now());
  });
  // First exchange climbs part of the ladder, then the link heals and the
  // frame is acknowledged.
  net_->set_link_up(NodeId{1}, NodeId{2}, false);
  a_->send(NodeId{2}, expire(1));
  sim_.run_until(sim_.now() + 200_ms);  // 4 retransmits burned
  EXPECT_EQ(a_->stats().retransmits, 4u);
  net_->set_link_up(NodeId{1}, NodeId{2}, true);
  sim_.run();
  EXPECT_EQ(at_b_, iota(1));
  EXPECT_EQ(a_->unacked(NodeId{2}), 0u);
  // The next silent loss gets the FULL ladder again: verdict 950ms after
  // the fresh send, not earlier.
  net_->set_link_up(NodeId{1}, NodeId{2}, false);
  const TimePoint resent_at = sim_.now();
  a_->send(NodeId{2}, expire(2));
  sim_.run();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].second, resent_at + 950_ms);
}

TEST_F(ReliableTest, ResetPeerHealsTheConversation) {
  build(FaultProfile{});
  a_->set_on_peer_dead([](NodeId) {});
  net_->set_link_up(NodeId{1}, NodeId{2}, false);
  a_->send(NodeId{2}, expire(1));
  sim_.run();
  ASSERT_TRUE(a_->peer_dead(NodeId{2}));
  net_->set_link_up(NodeId{1}, NodeId{2}, true);
  // Both survivors must forget the conversation: the receiver's window
  // would otherwise discard the restarted sequence numbers.
  a_->reset_peer(NodeId{2});
  b_->reset_peer(NodeId{1});
  at_b_.clear();
  for (std::uint64_t i = 1; i <= 10; ++i) a_->send(NodeId{2}, expire(i));
  sim_.run();
  EXPECT_EQ(at_b_, iota(10));
  EXPECT_FALSE(a_->peer_dead(NodeId{2}));
}

TEST_F(ReliableTest, UnframedTrafficPassesThrough) {
  build(FaultProfile{});
  // A legacy direct send (no transport framing) still reaches the
  // deliver upcall beside the reliable conversation.
  net_->send(NodeId{1}, NodeId{2}, expire(7));
  sim_.run();
  EXPECT_EQ(at_b_, std::vector<std::uint64_t>{7});
  EXPECT_EQ(b_->stats().delivered, 0u);  // not a framed delivery
}

TEST_F(ReliableTest, CorruptFramesAreDroppedByChecksumAndRecovered) {
  FaultProfile p;
  p.corrupt = 0.25;
  ReliableConfig config;
  config.enabled = true;
  // High corruption starves the ladder both ways (frames AND their acks);
  // give it enough retries that a dead verdict is unreachable here.
  config.max_retries = 40;
  build(p, config);
  for (std::uint64_t i = 1; i <= 50; ++i) a_->send(NodeId{2}, expire(i));
  sim_.run();
  // The wire checksum turns every surviving mutation into a channel-level
  // decode error; retransmission repairs all of them.
  EXPECT_EQ(at_b_, iota(50));
  EXPECT_GT(net_->stats().total.decode_errors, 0u);
  EXPECT_EQ(b_->stats().payload_decode_errors, 0u);
}

}  // namespace
}  // namespace qnetp::netmsg
