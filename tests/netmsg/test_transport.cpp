#include "netmsg/transport.hpp"

#include <gtest/gtest.h>

namespace qnetp::netmsg {
namespace {

using namespace qnetp::literals;

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : net_(sim_),
        a_(sim_, net_, CircuitId{1}, NodeId{1}, NodeId{2}),
        b_(sim_, net_, CircuitId{1}, NodeId{2}, NodeId{1}) {
    net_.connect(NodeId{1}, NodeId{2}, 10_us);
    // Dispatch inbound messages to the right transport endpoint.
    net_.set_handler(NodeId{1}, [this](NodeId, const Message& m) {
      a_.on_receive(m);
    });
    net_.set_handler(NodeId{2}, [this](NodeId, const Message& m) {
      b_.on_receive(m);
    });
  }

  des::Simulator sim_;
  ClassicalNetwork net_;
  TransportConnection a_;
  TransportConnection b_;
};

TEST_F(TransportTest, DataMessagesPassThrough) {
  int got = 0;
  b_.set_on_message([&](const Message& m) {
    EXPECT_EQ(message_name(m), "EXPIRE");
    ++got;
  });
  ExpireMsg e;
  e.circuit_id = CircuitId{1};
  e.origin_correlator = PairCorrelator{LinkId{1}, 1};
  a_.send(e);
  sim_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(TransportTest, KeepalivesConsumedSilently) {
  int got = 0;
  b_.set_on_message([&](const Message&) { ++got; });
  a_.send(KeepaliveMsg{CircuitId{1}});
  sim_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(TransportTest, HealthyConnectionStaysUp) {
  bool a_down = false, b_down = false;
  a_.set_on_down([&] { a_down = true; });
  b_.set_on_down([&] { b_down = true; });
  a_.enable_keepalive(10_ms, 35_ms);
  b_.enable_keepalive(10_ms, 35_ms);
  sim_.run_until(TimePoint::origin() + 500_ms);
  EXPECT_FALSE(a_down);
  EXPECT_FALSE(b_down);
  EXPECT_FALSE(a_.is_down());
  sim_.stop();
}

TEST_F(TransportTest, SeveredChannelTriggersOnDown) {
  bool a_down = false;
  a_.set_on_down([&] { a_down = true; });
  a_.enable_keepalive(10_ms, 35_ms);
  b_.enable_keepalive(10_ms, 35_ms);
  sim_.run_until(TimePoint::origin() + 100_ms);
  EXPECT_FALSE(a_down);
  net_.set_link_up(NodeId{1}, NodeId{2}, false);
  sim_.run_until(TimePoint::origin() + 300_ms);
  EXPECT_TRUE(a_down);
  EXPECT_TRUE(a_.is_down());
  sim_.stop();
}

TEST_F(TransportTest, DownConnectionStopsSending) {
  a_.enable_keepalive(10_ms, 35_ms);
  net_.set_link_up(NodeId{1}, NodeId{2}, false);
  sim_.run_until(TimePoint::origin() + 200_ms);
  ASSERT_TRUE(a_.is_down());
  const auto dropped_before = net_.messages_dropped();
  ExpireMsg e;
  e.circuit_id = CircuitId{1};
  e.origin_correlator = PairCorrelator{LinkId{1}, 1};
  a_.send(e);  // silently ignored: connection is dead
  EXPECT_EQ(net_.messages_dropped(), dropped_before);
  sim_.stop();
}

TEST_F(TransportTest, DataTrafficCountsAsLiveness) {
  // Only b_ probes; a_ never sends keepalives but b_ keeps hearing data.
  bool b_down = false;
  b_.set_on_down([&] { b_down = true; });
  b_.enable_keepalive(10_ms, 35_ms);
  // a_ sends a data message every 20 ms < 35 ms timeout.
  std::function<void()> pump = [&] {
    ExpireMsg e;
    e.circuit_id = CircuitId{1};
    e.origin_correlator = PairCorrelator{LinkId{1}, 1};
    a_.send(e);
    sim_.schedule(20_ms, pump);
  };
  sim_.schedule(Duration::zero(), pump);
  sim_.run_until(TimePoint::origin() + 300_ms);
  EXPECT_FALSE(b_down);
  sim_.stop();
}

TEST_F(TransportTest, KeepaliveParameterValidation) {
  EXPECT_THROW(a_.enable_keepalive(Duration::zero(), 1_ms), AssertionError);
  EXPECT_THROW(a_.enable_keepalive(10_ms, 5_ms), AssertionError);
}

}  // namespace
}  // namespace qnetp::netmsg
