// Network-level chaos battery: counter conservation under an active
// fault profile, and the silent-partition path — transport dead-peer
// verdicts driving the same routed outcome as an explicit sever, plus
// heal-and-recover.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "netsim/topology_spec.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

netmsg::FaultProfile chaos_faults() {
  netmsg::FaultProfile f;
  f.drop = 0.02;
  f.duplicate = 0.02;
  f.reorder = 0.05;
  f.corrupt = 0.01;
  f.jitter = 1_ms;
  f.seed = 99;
  return f;
}

std::unique_ptr<Network> build_grid(bool with_faults) {
  NetworkConfig config;
  config.seed = 11;
  config.transport.enabled = true;
  if (with_faults) config.faults = chaos_faults();
  auto net = TopologySpec::grid(2, 2, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0))
                 .build(config);
  net->enable_linkstate();
  return net;
}

void run_strides(Network& net, Duration total) {
  auto& sim = net.sharded_sim();
  const TimePoint end = sim.now() + total;
  while (sim.now() < end) {
    TimePoint next = sim.now() + 250_ms;
    if (next > end) next = end;
    sim.run_until(next);
    net.service_control_plane();
  }
}

/// The adjacency set a router believes in, comparable across networks.
std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>>
view_of(Network& net, NodeId at) {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> out;
  for (const auto& l : net.router(at).view_links()) {
    out.emplace_back(l.id.value(), l.a.value(), l.b.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ChaosNetwork, ConservationHoldsThroughAFaultyTrial) {
  auto net = build_grid(true);
  run_strides(*net, 2_s);
  auto probe = std::make_unique<DualProbe>(*net, NodeId{1}, EndpointId{10},
                                           NodeId{4}, EndpointId{20});
  const auto plan = net->establish_circuit(NodeId{1}, NodeId{4},
                                           EndpointId{10}, EndpointId{20},
                                           0.7, {}, nullptr, 500_ms);
  ASSERT_TRUE(plan.has_value());
  qnp::AppRequest req;
  req.id = RequestId{1};
  req.head_endpoint = EndpointId{10};
  req.tail_endpoint = EndpointId{20};
  req.num_pairs = 2;
  ASSERT_TRUE(
      net->engine(NodeId{1}).submit_request(plan->install.circuit_id, req));
  run_strides(*net, 4_s);
  net->teardown_circuit(plan->install.circuit_id, "test over");
  run_strides(*net, 1_s);

  const auto stats = net->classical().stats();
  // The fault profile actually did something.
  EXPECT_GT(stats.total.dropped_fault + stats.total.duplicated +
                stats.total.reordered + stats.total.corrupted,
            0u);
  // Conservation per channel and in aggregate: no counter may run ahead
  // of the copies actually put on the wire.
  const auto conserved = [](const netmsg::ChannelStats& s) {
    if (s.dropped_down + s.dropped_fault > s.sent) return false;
    return s.delivered + s.dropped_no_handler + s.decode_errors <=
           s.transmissions();
  };
  EXPECT_TRUE(conserved(stats.total));
  netmsg::ChannelStats sum;
  for (const auto& [key, s] : stats.channels) {
    EXPECT_TRUE(conserved(s)) << key.first << "->" << key.second;
    sum += s;
  }
  EXPECT_EQ(sum.sent, stats.total.sent);
  EXPECT_EQ(sum.delivered, stats.total.delivered);
  EXPECT_EQ(sum.decode_errors, stats.total.decode_errors);
  // Clean shutdown despite the chaos.
  EXPECT_TRUE(net->quiescent());
  for (const NodeId id : net->node_ids()) {
    EXPECT_TRUE(net->engine(id).consistency_check().empty());
  }
}

TEST(ChaosNetwork, SilentPartitionConvergesToTheSeverView) {
  // Twin networks, same seed: one link silently partitioned vs
  // explicitly severed. The dead-peer verdicts must drive the partition
  // twin to the same routed view the sever twin reaches by notification.
  auto silent = build_grid(false);
  auto loud = build_grid(false);
  run_strides(*silent, 2_s);
  run_strides(*loud, 2_s);

  silent->partition_link(NodeId{1}, NodeId{2});
  loud->sever_link(NodeId{1}, NodeId{2});
  // Verdict ladder: 950ms of unanswered retransmissions (LSA refresh
  // provides the probe traffic), then the next stride's dead-peer drain
  // withdraws the adjacency; the sever side ages out symmetrically.
  run_strides(*silent, 4_s);
  run_strides(*loud, 4_s);

  EXPECT_TRUE(silent->peer_declared_dead(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(silent->peer_declared_dead(NodeId{2}, NodeId{1}));
  std::uint64_t verdicts = 0;
  for (const NodeId id : silent->node_ids()) {
    verdicts += silent->transport(id).stats().dead_verdicts;
  }
  EXPECT_EQ(verdicts, 2u);  // one per endpoint of the cut adjacency

  const auto view_silent = view_of(*silent, NodeId{4});
  const auto view_loud = view_of(*loud, NodeId{4});
  EXPECT_EQ(view_silent, view_loud);
  // And the cut adjacency is actually gone from the routed view.
  for (const auto& [id, a, b] : view_silent) {
    EXPECT_FALSE((a == 1 && b == 2) || (a == 2 && b == 1));
  }
}

TEST(ChaosNetwork, HealAfterPartitionRestoresTheAdjacency) {
  auto net = build_grid(false);
  run_strides(*net, 2_s);
  const auto before = view_of(*net, NodeId{3});
  net->partition_link(NodeId{1}, NodeId{2});
  run_strides(*net, 4_s);
  ASSERT_TRUE(net->peer_declared_dead(NodeId{1}, NodeId{2}));
  net->heal_link(NodeId{1}, NodeId{2});
  run_strides(*net, 4_s);
  // Fresh transport conversations, verdicts cleared, adjacency
  // re-advertised: the view is the pre-cut one again.
  EXPECT_FALSE(net->peer_declared_dead(NodeId{1}, NodeId{2}));
  EXPECT_FALSE(net->peer_declared_dead(NodeId{2}, NodeId{1}));
  EXPECT_EQ(view_of(*net, NodeId{3}), before);
}

TEST(ChaosNetwork, PartitionRequiresTheTransport) {
  NetworkConfig config;
  config.seed = 3;
  auto net = TopologySpec::grid(2, 2, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0))
                 .build(config);
  net->enable_linkstate();
  EXPECT_THROW(net->partition_link(NodeId{1}, NodeId{2}), AssertionError);
}

}  // namespace
}  // namespace qnetp::netsim
