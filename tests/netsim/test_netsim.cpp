// Unit tests for the network assembly, probes and oracle audit helpers.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/oracle.hpp"
#include "netsim/probe.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

TEST(NetworkBuilder, ChainTopologyIsWiredBothWays) {
  NetworkConfig config;
  config.seed = 1;
  auto net = make_chain(4, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  EXPECT_EQ(net->topology().node_count(), 4u);
  EXPECT_EQ(net->topology().link_count(), 3u);
  for (std::uint64_t i = 1; i < 4; ++i) {
    EXPECT_NE(net->egp(NodeId{i}, NodeId{i + 1}), nullptr);
    EXPECT_EQ(net->egp(NodeId{i}, NodeId{i + 1}),
              net->egp(NodeId{i + 1}, NodeId{i}));
    EXPECT_TRUE(net->classical().connected(NodeId{i}, NodeId{i + 1}));
  }
  EXPECT_EQ(net->egp(NodeId{1}, NodeId{3}), nullptr);  // not adjacent
}

TEST(NetworkBuilder, DumbbellShape) {
  NetworkConfig config;
  config.seed = 1;
  auto net = make_dumbbell(config, qhw::simulation_preset(),
                           qhw::FiberParams::lab(2.0));
  const DumbbellIds ids;
  EXPECT_EQ(net->topology().node_count(), 6u);
  EXPECT_EQ(net->topology().link_count(), 5u);
  // The only path from the A side to the B side crosses MA-MB.
  const auto path = net->topology().shortest_path(ids.a0, ids.b1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ((*path)[1], ids.ma);
  EXPECT_EQ((*path)[2], ids.mb);
}

TEST(NetworkBuilder, PerLinkPoolsAreProvisioned) {
  NetworkConfig config;
  config.seed = 1;
  config.comm_qubits_per_link = 3;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  // Middle node has two links, 3 qubits each.
  auto& qmm = net->device(NodeId{2}).memory();
  EXPECT_EQ(qmm.total_count(), 6u);
  EXPECT_TRUE(qmm.all_free());
}

TEST(NetworkBuilder, NearTermNodesGetSharedPoolAndSerialization) {
  NetworkConfig config;
  config.seed = 1;
  config.storage_qubits = 2;
  auto net = make_chain(3, config, qhw::near_term_preset(),
                        qhw::FiberParams::telecom(25000.0));
  auto& dev = net->device(NodeId{2});
  EXPECT_TRUE(dev.serialized());
  EXPECT_EQ(dev.memory().free_storage_count(), 2u);
  // The single communication qubit serves both links.
  EXPECT_EQ(dev.memory().free_comm_count(LinkId{1}), 1u);
  EXPECT_EQ(dev.memory().free_comm_count(LinkId{2}), 1u);
  const auto q = dev.memory().try_alloc_comm(LinkId{1}, TimePoint::origin());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(dev.memory().free_comm_count(LinkId{2}), 0u);
  dev.memory().free(*q);
}

TEST(NetworkBuilder, UnknownNodeAsserts) {
  NetworkConfig config;
  auto net = make_chain(2, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  EXPECT_THROW(net->node(NodeId{99}), AssertionError);
  EXPECT_THROW(net->hardware(NodeId{99}), AssertionError);
}

TEST(EstablishCircuit, FailsCleanlyForImpossibleTargets) {
  NetworkConfig config;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  std::string reason;
  const auto plan =
      net->establish_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                             EndpointId{20}, 0.999, {}, &reason);
  EXPECT_FALSE(plan.has_value());
  EXPECT_FALSE(reason.empty());
}

TEST(EstablishCircuit, TwoCircuitsCanCoexistOnOnePath) {
  NetworkConfig config;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  const auto p1 = net->establish_circuit(NodeId{1}, NodeId{3},
                                         EndpointId{10}, EndpointId{20},
                                         0.85);
  const auto p2 = net->establish_circuit(NodeId{1}, NodeId{3},
                                         EndpointId{11}, EndpointId{21},
                                         0.8);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->install.circuit_id, p2->install.circuit_id);
  EXPECT_TRUE(net->engine(NodeId{2}).has_circuit(p1->install.circuit_id));
  EXPECT_TRUE(net->engine(NodeId{2}).has_circuit(p2->install.circuit_id));
}

TEST(OracleAudit, DetectsHalfPairsAndMismatches) {
  // Synthetic probes: exercise the audit bookkeeping itself.
  NetworkConfig config;
  auto net = make_chain(2, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  Probe head(*net, NodeId{1}, EndpointId{10});
  Probe tail(*net, NodeId{2}, EndpointId{20});
  const AuditReport empty = audit_pair_consistency(head, tail);
  EXPECT_EQ(empty.matched_pairs, 0u);
  EXPECT_EQ(empty.half_pairs, 0u);
}

TEST(Quiescence, FreshNetworkIsQuiescent) {
  NetworkConfig config;
  auto net = make_chain(3, config, qhw::simulation_preset(),
                        qhw::FiberParams::lab(2.0));
  EXPECT_TRUE(net->quiescent());
}

}  // namespace
}  // namespace qnetp::netsim
