// Multi-region fabrics on the sharded kernel: compose_regions structure,
// the region -> shard fold, lookahead derivation, region-local circuit
// admission and cross-shard classical delivery.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <utility>

#include "netsim/network.hpp"
#include "netsim/topology_spec.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

TopologySpec two_region_chains(double bridge_m = 20000.0) {
  const auto hw = qhw::simulation_preset();
  return TopologySpec::compose_regions(
      {TopologySpec::chain(3, hw, qhw::FiberParams::lab(2.0)),
       TopologySpec::chain(3, hw, qhw::FiberParams::lab(2.0))},
      qhw::FiberParams::telecom(bridge_m));
}

TEST(ComposeRegions, RenumbersTagsAndBridges) {
  const auto spec = two_region_chains();
  spec.validate();
  EXPECT_EQ(spec.node_count(), 6u);
  EXPECT_EQ(spec.region_count(), 2u);
  // Part 1's nodes are renumbered to the contiguous block 4..6 and
  // tagged region 1; part 0 keeps 1..3 in region 0.
  for (const auto& n : spec.nodes) {
    EXPECT_EQ(n.region, n.id.value() <= 3 ? 0u : 1u);
  }
  // 2 + 2 intra-region links plus exactly one bridge, last(0)-first(1).
  EXPECT_EQ(spec.link_count(), 5u);
  const LinkSpec* bridge = spec.link_between(NodeId{3}, NodeId{4});
  ASSERT_NE(bridge, nullptr);
  ASSERT_TRUE(bridge->fiber.has_value());
  EXPECT_DOUBLE_EQ(bridge->fiber->length_m, 20000.0);
  EXPECT_TRUE(spec.connected());
}

TEST(ShardedNetwork, RegionFoldIsContiguous) {
  const auto hw = qhw::simulation_preset();
  const auto part = TopologySpec::chain(2, hw, qhw::FiberParams::lab(2.0));
  const auto spec = TopologySpec::compose_regions(
      {part, part, part, part}, qhw::FiberParams::telecom(20000.0));
  NetworkConfig config;
  config.seed = 1;
  config.sharding.shards = 2;
  auto net = spec.build(config);
  EXPECT_TRUE(net->sharding_enabled());
  EXPECT_EQ(net->region_count(), 4u);
  EXPECT_EQ(net->sharded_sim().shard_count(), 2u);
  // Regions 0,1 fold onto shard 0 and regions 2,3 onto shard 1.
  for (std::uint64_t id = 1; id <= 8; ++id) {
    const std::size_t region = (id - 1) / 2;
    EXPECT_EQ(net->region_of(NodeId{id}), region);
    EXPECT_EQ(net->shard_of(NodeId{id}), region / 2);
  }
}

TEST(ShardedNetwork, LookaheadIsTheBridgePropagationDelay) {
  NetworkConfig config;
  config.seed = 1;
  config.sharding.shards = 2;
  auto net = two_region_chains().build(config);
  const auto lookahead = net->sharded_sim().lookahead();
  ASSERT_TRUE(lookahead.has_value());
  // 20 km at ~2e8 m/s: the bridge (the only cross-shard channel) bounds
  // the conservative window.
  EXPECT_EQ(*lookahead, qhw::FiberParams::telecom(20000.0).propagation_delay());
  EXPECT_GT(*lookahead, 90_us);
}

TEST(ShardedNetwork, SingleShardMultiRegionStillGatesOnRegions) {
  // shards=1 on a multi-region spec: same region-local admission and
  // forked RNG streams as any sharded run (digests must not depend on
  // the worker count), just no worker threads.
  NetworkConfig config;
  config.seed = 1;
  auto net = two_region_chains().build(config);
  EXPECT_TRUE(net->sharding_enabled());
  EXPECT_EQ(net->sharded_sim().shard_count(), 1u);
  std::string reason;
  const auto plan =
      net->establish_circuit(NodeId{2}, NodeId{5}, EndpointId{1},
                             EndpointId{2}, 0.72, {}, &reason);
  EXPECT_FALSE(plan.has_value());
  EXPECT_NE(reason.find("region"), std::string::npos);
}

TEST(ShardedNetwork, CrossRegionCircuitRejectedAndCapacityReleased) {
  NetworkConfig config;
  config.seed = 1;
  config.sharding.shards = 2;
  auto net = two_region_chains().build(config);
  std::string reason;
  const auto rejected =
      net->establish_circuit(NodeId{1}, NodeId{6}, EndpointId{1},
                             EndpointId{2}, 0.72, {}, &reason);
  EXPECT_FALSE(rejected.has_value());
  EXPECT_NE(reason.find("region"), std::string::npos);

  // The rejected attempt must not leak admitted capacity or qubits:
  // an intra-region circuit over the same head still installs.
  const auto ok = net->establish_circuit(NodeId{1}, NodeId{3}, EndpointId{3},
                                         EndpointId{4}, 0.72);
  ASSERT_TRUE(ok.has_value());
  net->teardown_circuit(ok->install.circuit_id, "test done");
  EXPECT_TRUE(net->quiescent());
}

TEST(ShardedNetwork, KeepaliveCrossesTheBridgeAtTwoShards) {
  NetworkConfig config;
  config.seed = 1;
  config.sharding.shards = 2;
  auto net = two_region_chains().build(config);
  ASSERT_NE(net->shard_of(NodeId{3}), net->shard_of(NodeId{4}));
  const auto before = net->classical().messages_delivered();
  net->classical().send(NodeId{3}, NodeId{4}, netmsg::KeepaliveMsg{CircuitId{1}});
  net->classical().send(NodeId{4}, NodeId{3}, netmsg::KeepaliveMsg{CircuitId{1}});
  net->sharded_sim().run_until(net->sharded_sim().now() + 10_ms);
  EXPECT_EQ(net->classical().messages_delivered(), before + 2);
}

TEST(ShardedNetwork, IntraRegionCircuitsRunOnBothShards) {
  // One circuit per region, each driven to completion by the sharded
  // kernel; the fabric must end quiescent with consistent engines.
  NetworkConfig config;
  config.seed = 7;
  config.sharding.shards = 2;
  auto net = two_region_chains().build(config);
  des::ShardedSimulator& ssim = net->sharded_sim();

  struct Probe {
    Network* net;
    NodeId head, tail;
    bool completed = false;
  };
  std::deque<Probe> probes;
  std::size_t installed = 0;
  for (const auto& [head, tail] :
       {std::pair{NodeId{1}, NodeId{3}}, std::pair{NodeId{4}, NodeId{6}}}) {
    const EndpointId head_ep{10 + installed};
    const EndpointId tail_ep{20 + installed};
    const auto plan =
        net->establish_circuit(head, tail, head_ep, tail_ep, 0.72);
    ASSERT_TRUE(plan.has_value());
    Probe& probe = probes.emplace_back(Probe{net.get(), head, tail});

    qnp::EndpointHandlers hh;
    hh.on_pair = [&probe](const qnp::PairDelivery& d) {
      if (d.qubit.valid() && !d.tracking_pending) {
        probe.net->engine(probe.head).release_app_qubit(d.qubit);
      }
    };
    hh.on_tracking = [&probe](const qnp::PairDelivery& d) {
      if (d.qubit.valid()) {
        probe.net->engine(probe.head).release_app_qubit(d.qubit);
      }
    };
    hh.on_complete = [&probe](CircuitId, RequestId) {
      probe.completed = true;
    };
    net->engine(head).register_endpoint(head_ep, std::move(hh));

    qnp::EndpointHandlers th;
    th.on_pair = [&probe](const qnp::PairDelivery& d) {
      if (d.qubit.valid() && !d.tracking_pending) {
        probe.net->engine(probe.tail).release_app_qubit(d.qubit);
      }
    };
    th.on_tracking = [&probe](const qnp::PairDelivery& d) {
      if (d.qubit.valid()) {
        probe.net->engine(probe.tail).release_app_qubit(d.qubit);
      }
    };
    net->engine(tail).register_endpoint(tail_ep, std::move(th));

    qnp::AppRequest req;
    req.id = RequestId{100 + installed};
    req.head_endpoint = head_ep;
    req.tail_endpoint = tail_ep;
    req.type = netmsg::RequestType::keep;
    req.num_pairs = 2;
    req.delta_t = 5_s;
    ASSERT_TRUE(net->engine(head).submit_request(plan->install.circuit_id,
                                                 req));
    ++installed;
  }

  const TimePoint deadline = ssim.now() + 10_s;
  while (ssim.now() < deadline) {
    bool done = true;
    for (const Probe& p : probes) done = done && p.completed;
    if (done) break;
    ssim.run_until(ssim.now() + 50_ms);
  }
  for (const Probe& p : probes) EXPECT_TRUE(p.completed);
  for (const NodeId id : net->node_ids()) {
    EXPECT_EQ(net->engine(id).consistency_check(), "");
  }
}

}  // namespace
}  // namespace qnetp::netsim
