// TopologySpec: declarative builders (grid/ring/star/chain/dumbbell and
// seeded Waxman graphs), per-link/per-node overrides, construction
// invariants, and the oracle-audited multi-circuit behaviour of networks
// they assemble — including admission-rejection determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "netsim/probe.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/assert.hpp"

namespace qnetp::netsim {
namespace {

using namespace qnetp::literals;

qhw::HardwareParams hw() { return qhw::simulation_preset(); }
qhw::FiberParams fiber() { return qhw::FiberParams::lab(2.0); }

TEST(TopologySpec, ChainRingStarShapes) {
  const auto chain = TopologySpec::chain(5, hw(), fiber());
  EXPECT_EQ(chain.node_count(), 5u);
  EXPECT_EQ(chain.link_count(), 4u);
  EXPECT_TRUE(chain.connected());
  EXPECT_NE(chain.link_between(NodeId{2}, NodeId{3}), nullptr);
  EXPECT_EQ(chain.link_between(NodeId{1}, NodeId{5}), nullptr);

  const auto ring = TopologySpec::ring(6, hw(), fiber());
  EXPECT_EQ(ring.node_count(), 6u);
  EXPECT_EQ(ring.link_count(), 6u);  // chain + closing link
  EXPECT_TRUE(ring.connected());
  EXPECT_NE(ring.link_between(NodeId{6}, NodeId{1}), nullptr);

  const auto star = TopologySpec::star(5, hw(), fiber());
  EXPECT_EQ(star.node_count(), 6u);  // hub + 5 leaves
  EXPECT_EQ(star.link_count(), 5u);
  EXPECT_TRUE(star.connected());
  for (std::uint64_t leaf = 2; leaf <= 6; ++leaf) {
    EXPECT_NE(star.link_between(NodeId{1}, NodeId{leaf}), nullptr);
    for (std::uint64_t other = leaf + 1; other <= 6; ++other) {
      EXPECT_EQ(star.link_between(NodeId{leaf}, NodeId{other}), nullptr);
    }
  }
}

TEST(TopologySpec, GridShapeAndBuiltTopology) {
  const auto spec = TopologySpec::grid(3, 3, hw(), fiber());
  EXPECT_EQ(spec.node_count(), 9u);
  EXPECT_EQ(spec.link_count(), 12u);
  EXPECT_TRUE(spec.connected());

  NetworkConfig config;
  config.seed = 5;
  auto net = spec.build(config);
  EXPECT_EQ(net->topology().node_count(), 9u);
  EXPECT_EQ(net->topology().link_count(), 12u);
  // Centre node (2,2) -> id 5 has degree 4; corners have degree 2.
  EXPECT_EQ(net->topology().neighbours(NodeId{5}).size(), 4u);
  EXPECT_EQ(net->topology().neighbours(NodeId{1}).size(), 2u);
  const auto path = net->topology().shortest_path(NodeId{1}, NodeId{9});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
}

TEST(TopologySpec, ValidateCatchesStructuralErrors) {
  auto good = TopologySpec::chain(3, hw(), fiber());
  good.validate();  // passes

  auto dup_node = good;
  dup_node.nodes.push_back(NodeSpec{NodeId{2}, std::nullopt});
  EXPECT_THROW(dup_node.validate(), AssertionError);

  auto dup_link = good;
  dup_link.links.push_back(LinkSpec{NodeId{2}, NodeId{1}, std::nullopt});
  EXPECT_THROW(dup_link.validate(), AssertionError);

  auto dangling = good;
  dangling.links.push_back(LinkSpec{NodeId{1}, NodeId{9}, std::nullopt});
  EXPECT_THROW(dangling.validate(), AssertionError);

  auto self_loop = good;
  self_loop.links.push_back(LinkSpec{NodeId{1}, NodeId{1}, std::nullopt});
  EXPECT_THROW(self_loop.validate(), AssertionError);

  auto split = good;
  split.nodes.push_back(NodeSpec{NodeId{7}, std::nullopt});
  split.validate();  // structurally fine ...
  EXPECT_FALSE(split.connected());  // ... but disconnected
}

TEST(TopologySpec, OverridesReachTheBuiltNetwork) {
  auto spec = TopologySpec::chain(3, hw(), fiber());
  spec.with_link_fiber(NodeId{2}, NodeId{3}, qhw::FiberParams::lab(10.0));
  spec.with_node_hardware(NodeId{3}, qhw::near_term_preset());

  NetworkConfig config;
  config.seed = 7;
  auto net = spec.build(config);
  EXPECT_DOUBLE_EQ(net->egp(NodeId{1}, NodeId{2})->model().fiber().length_m,
                   2.0);
  EXPECT_DOUBLE_EQ(net->egp(NodeId{2}, NodeId{3})->model().fiber().length_m,
                   10.0);
  EXPECT_EQ(net->hardware(NodeId{1}).name, qhw::simulation_preset().name);
  EXPECT_EQ(net->hardware(NodeId{3}).name, qhw::near_term_preset().name);

  EXPECT_THROW(spec.with_link_fiber(NodeId{1}, NodeId{3}, fiber()),
               AssertionError);
  EXPECT_THROW(spec.with_node_hardware(NodeId{9}, hw()), AssertionError);
}

TEST(TopologySpec, WaxmanIsSeedDeterministicAndConnected) {
  WaxmanParams params;
  params.nodes = 12;
  const auto a = TopologySpec::waxman(1234, params, hw());
  const auto b = TopologySpec::waxman(1234, params, hw());
  ASSERT_EQ(a.node_count(), 12u);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].a, b.links[i].a);
    EXPECT_EQ(a.links[i].b, b.links[i].b);
    ASSERT_TRUE(a.links[i].fiber.has_value());
    EXPECT_DOUBLE_EQ(a.links[i].fiber->length_m, b.links[i].fiber->length_m);
    EXPECT_GE(a.links[i].fiber->length_m, params.min_length_m);
  }
  a.validate();
  EXPECT_TRUE(a.connected());

  // A different seed gives a different graph (overwhelmingly likely for
  // 12 nodes; pinned by these seeds).
  const auto c = TopologySpec::waxman(99, params, hw());
  EXPECT_TRUE(c.connected());
  bool differs = a.link_count() != c.link_count();
  for (std::size_t i = 0; !differs && i < a.links.size(); ++i) {
    differs = a.links[i].a != c.links[i].a || a.links[i].b != c.links[i].b;
  }
  EXPECT_TRUE(differs);
}

TEST(TopologySpec, WaxmanNetworksCarryCircuits) {
  WaxmanParams params;
  params.nodes = 8;
  NetworkConfig config;
  config.seed = 21;
  auto net = TopologySpec::waxman(21, params, hw()).build(config);
  // Every pair is routable (the builder guarantees connectivity).
  for (std::uint64_t i = 1; i <= 8; ++i) {
    for (std::uint64_t j = i + 1; j <= 8; ++j) {
      EXPECT_TRUE(net->topology()
                      .shortest_path(NodeId{i}, NodeId{j})
                      .has_value());
    }
  }
}

qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t n,
                             EndpointId h, EndpointId t) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = h;
  r.tail_endpoint = t;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = n;
  return r;
}

TEST(TopologySpec, GridTwoConcurrentCircuitsOracleAudited) {
  // The satellite acceptance scenario: a 3x3 grid built from the spec
  // carrying two concurrent circuits that cross at the centre, audited
  // end-to-end through the pair oracle (DualProbe holds both qubits at
  // delivery and checks the joint state).
  NetworkConfig config;
  config.seed = 23;
  auto net = TopologySpec::grid(3, 3, hw(), fiber()).build(config);

  DualProbe p1(*net, NodeId{4}, EndpointId{10}, NodeId{6}, EndpointId{20});
  DualProbe p2(*net, NodeId{2}, EndpointId{11}, NodeId{8}, EndpointId{21});
  const auto plan1 = net->establish_circuit(NodeId{4}, NodeId{6},
                                            EndpointId{10}, EndpointId{20},
                                            0.8);
  const auto plan2 = net->establish_circuit(NodeId{2}, NodeId{8},
                                            EndpointId{11}, EndpointId{21},
                                            0.8);
  ASSERT_TRUE(plan1 && plan2);
  ASSERT_TRUE(net->engine(NodeId{4}).submit_request(
      plan1->install.circuit_id,
      keep_request(1, 6, EndpointId{10}, EndpointId{20})));
  ASSERT_TRUE(net->engine(NodeId{2}).submit_request(
      plan2->install.circuit_id,
      keep_request(2, 6, EndpointId{11}, EndpointId{21})));
  net->sim().run_until(net->sim().now() + 120_s);

  for (const DualProbe* p : {&p1, &p2}) {
    EXPECT_EQ(p->pair_count(), 6u);
    EXPECT_EQ(p->unmatched(), 0u);
    EXPECT_EQ(p->state_mismatches(), 0u);
    EXPECT_GE(p->mean_fidelity(), 0.75);
  }
  EXPECT_TRUE(net->controller() != nullptr);
  EXPECT_EQ(net->controller()->planned_circuits(), 2u);
  net->sim().stop();
}

TEST(TopologySpec, AdmissionRejectionDeterministicUnderIdenticalSeeds) {
  // Oversubscribed guaranteed demands on a ring: some circuits admit
  // (possibly re-routed), later ones are rejected. The admit/reject
  // pattern and every admitted path must replay identically for the same
  // seed.
  const auto run = [&](std::uint64_t seed) {
    NetworkConfig config;
    config.seed = seed;
    auto net = TopologySpec::ring(6, hw(), fiber()).build(config);
    std::vector<std::string> outcomes;
    // Learn the solo capacity, then demand well past half of it so two
    // same-bottleneck circuits cannot coexist.
    double cap = 0.0;
    {
      auto probe_net = TopologySpec::ring(6, hw(), fiber()).build(config);
      const auto probe = probe_net->establish_circuit(
          NodeId{1}, NodeId{4}, EndpointId{10}, EndpointId{20}, 0.8);
      EXPECT_TRUE(probe.has_value());
      cap = probe->max_eer;
      probe_net->sim().stop();
    }
    ctrl::CircuitPlanOptions options;
    options.requested_eer = 0.7 * cap;
    for (std::size_t i = 0; i < 4; ++i) {
      const NodeId head{1 + i};
      const NodeId tail{1 + ((i + 3) % 6)};
      std::string reason;
      const auto plan = net->establish_circuit(
          head, tail, EndpointId{10 + i}, EndpointId{20 + i}, 0.8, options,
          &reason);
      if (plan.has_value()) {
        std::string path = "ok:";
        for (const NodeId n : plan->path) {
          path += std::to_string(n.value()) + ",";
        }
        outcomes.push_back(path);
      } else {
        outcomes.push_back("rejected");
      }
    }
    net->sim().stop();
    return outcomes;
  };

  const auto first = run(31);
  const auto second = run(31);
  EXPECT_EQ(first, second);
  // The oversubscription actually bites: at least one of each outcome.
  EXPECT_NE(std::count(first.begin(), first.end(), std::string("rejected")),
            0);
  EXPECT_NE(first.front(), "rejected");
}

}  // namespace
}  // namespace qnetp::netsim
