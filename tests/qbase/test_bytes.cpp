#include "qbase/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace qnetp {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.boolean(true);
  w.boolean(false);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, VarintRoundTrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xFFFFFFFFull,
                                  std::numeric_limits<std::uint64_t>::max()};
  ByteWriter w;
  for (auto v : values) w.varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, VarintCompactness) {
  ByteWriter w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Bytes, DoubleRoundTrip) {
  const double values[] = {0.0, -1.5, 3.141592653589793, 1e-300, 1e300};
  ByteWriter w;
  for (auto v : values) w.f64(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_DOUBLE_EQ(r.f64(), v);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, UnderrunThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), CodecError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes follow
  w.u8('a');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), CodecError);
}

TEST(Bytes, MalformedVarintThrows) {
  Bytes buf(11, 0xFF);  // 11 continuation bytes > 64 bits
  ByteReader r(buf);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Bytes, RawAppend) {
  ByteWriter inner;
  inner.u32(0xCAFEBABE);
  ByteWriter outer;
  outer.u8(1);
  outer.raw(inner.bytes());
  ByteReader r(outer.bytes());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
}

}  // namespace
}  // namespace qnetp
