#include "qbase/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace qnetp {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
  EXPECT_TRUE(NodeId{7}.valid());
}

TEST(StrongId, DistinctTypesDoNotCompare) {
  // Compile-time property: NodeId and LinkId are distinct types. This test
  // documents the intent; the static_assert is the actual check.
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_convertible_v<NodeId, LinkId>);
  SUCCEED();
}

TEST(StrongId, OrderingAndEquality) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(CircuitId{42}, CircuitId{42});
  EXPECT_NE(CircuitId{42}, CircuitId{43});
}

TEST(StrongId, ToString) {
  EXPECT_EQ(NodeId{3}.to_string(), "node:3");
  EXPECT_EQ(CircuitId{12}.to_string(), "vc:12");
  EXPECT_EQ(LinkLabel{5}.to_string(), "label:5");
}

TEST(StrongId, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(PairCorrelator, EqualityAndHash) {
  const PairCorrelator a{LinkId{1}, 7};
  const PairCorrelator b{LinkId{1}, 7};
  const PairCorrelator c{LinkId{2}, 7};
  const PairCorrelator d{LinkId{1}, 8};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  std::unordered_map<PairCorrelator, int> map;
  map[a] = 1;
  map[c] = 2;
  map[d] = 3;
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map[b], 1);
}

TEST(PairCorrelator, Validity) {
  EXPECT_FALSE(PairCorrelator{}.valid());
  EXPECT_TRUE((PairCorrelator{LinkId{1}, 0}).valid());
}

TEST(Address, EqualityHashToString) {
  const Address a{NodeId{1}, EndpointId{5}};
  const Address b{NodeId{1}, EndpointId{5}};
  const Address c{NodeId{1}, EndpointId{6}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string(), "node:1/ep:5");
  std::unordered_set<Address> set{a, b, c};
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace qnetp
