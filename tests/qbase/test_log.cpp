#include "qbase/log.hpp"

#include <gtest/gtest.h>

namespace qnetp {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(Log::level()) {}
  ~LogTest() override {
    Log::set_level(saved_);
    Log::set_clock(nullptr);
  }
  LogLevel saved_;
};

TEST_F(LogTest, LevelGating) {
  Log::set_level(LogLevel::warn);
  EXPECT_FALSE(Log::enabled(LogLevel::trace));
  EXPECT_FALSE(Log::enabled(LogLevel::debug));
  EXPECT_FALSE(Log::enabled(LogLevel::info));
  EXPECT_TRUE(Log::enabled(LogLevel::warn));
  EXPECT_TRUE(Log::enabled(LogLevel::error));
  Log::set_level(LogLevel::trace);
  EXPECT_TRUE(Log::enabled(LogLevel::trace));
  Log::set_level(LogLevel::off);
  EXPECT_FALSE(Log::enabled(LogLevel::error));
}

TEST_F(LogTest, MacroShortCircuitsWhenDisabled) {
  Log::set_level(LogLevel::off);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  QNETP_LOG(debug, "test") << expensive();
  EXPECT_EQ(evaluations, 0);
  Log::set_level(LogLevel::trace);
  QNETP_LOG(error, "test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, ClockStampingDoesNotCrash) {
  Log::set_level(LogLevel::trace);
  Log::set_clock([] { return TimePoint::origin() + Duration::ms(5); });
  QNETP_LOG(info, "test") << "with clock";
  Log::set_clock(nullptr);
  QNETP_LOG(info, "test") << "without clock";
  SUCCEED();
}

}  // namespace
}  // namespace qnetp
