// qbase/ordered.hpp: the deterministic-iteration helpers every
// hash-container walk in a digest path must go through (DESIGN.md
// sec. 9). These tests pin the contract: sorted output regardless of
// bucket layout, drain leaves the container empty, for_each_sorted
// tolerates erasure of not-yet-visited entries.
#include "qbase/ordered.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qbase/ids.hpp"

namespace qnetp::qbase {
namespace {

TEST(OrderedKeys, EmptyMapYieldsEmptyVector) {
  std::unordered_map<int, std::string> m;
  EXPECT_TRUE(ordered_keys(m).empty());
}

TEST(OrderedKeys, SingleEntry) {
  std::unordered_map<int, std::string> m{{7, "seven"}};
  EXPECT_EQ(ordered_keys(m), (std::vector<int>{7}));
}

TEST(OrderedKeys, ManyEntriesSortedWhateverInsertionOrder) {
  std::unordered_map<int, int> m;
  // Insertion order chosen to disagree with key order; rehashing along
  // the way scrambles bucket order further.
  for (const int k : {42, 3, 99, 1, 57, 23, 88, 5, 64, 17}) m[k] = k * 10;
  const std::vector<int> expect{1, 3, 5, 17, 23, 42, 57, 64, 88, 99};
  EXPECT_EQ(ordered_keys(m), expect);
  EXPECT_EQ(m.size(), 10u) << "ordered_keys must not mutate the container";
}

TEST(OrderedKeys, SetOverloadReturnsElementsSorted) {
  std::unordered_set<int> s{9, 2, 5, 1};
  EXPECT_EQ(ordered_keys(s), (std::vector<int>{1, 2, 5, 9}));
}

TEST(OrderedKeys, StrongIdKeysSortByValue) {
  std::unordered_map<NodeId, int> m;
  m[NodeId{30}] = 3;
  m[NodeId{10}] = 1;
  m[NodeId{20}] = 2;
  const auto keys = ordered_keys(m);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], NodeId{10});
  EXPECT_EQ(keys[1], NodeId{20});
  EXPECT_EQ(keys[2], NodeId{30});
}

TEST(OrderedKeys, PairCorrelatorKeysSortLinkThenSequence) {
  std::unordered_map<PairCorrelator, int> m;
  m[PairCorrelator{LinkId{2}, 1}] = 0;
  m[PairCorrelator{LinkId{1}, 9}] = 0;
  m[PairCorrelator{LinkId{1}, 2}] = 0;
  const auto keys = ordered_keys(m);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], (PairCorrelator{LinkId{1}, 2}));
  EXPECT_EQ(keys[1], (PairCorrelator{LinkId{1}, 9}));
  EXPECT_EQ(keys[2], (PairCorrelator{LinkId{2}, 1}));
}

TEST(ForEachSorted, VisitsInKeyOrder) {
  std::unordered_map<int, std::string> m{
      {3, "c"}, {1, "a"}, {2, "b"}};
  std::string seen;
  for_each_sorted(m, [&](const int&, std::string& v) { seen += v; });
  EXPECT_EQ(seen, "abc");
}

TEST(ForEachSorted, VisitorMayMutateValues) {
  std::unordered_map<int, int> m{{1, 10}, {2, 20}};
  for_each_sorted(m, [](const int&, int& v) { v += 1; });
  EXPECT_EQ(m.at(1), 11);
  EXPECT_EQ(m.at(2), 21);
}

TEST(ForEachSorted, SkipsEntriesErasedMidWalk) {
  std::unordered_map<int, int> m{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  std::vector<int> visited;
  for_each_sorted(m, [&](const int& k, int&) {
    visited.push_back(k);
    if (k == 1) m.erase(3);  // erase a later key: it must be skipped
  });
  EXPECT_EQ(visited, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(m.size(), 3u);
}

TEST(DrainSorted, EmptyMap) {
  std::unordered_map<int, int> m;
  EXPECT_TRUE(drain_sorted(m).empty());
  EXPECT_TRUE(m.empty());
}

TEST(DrainSorted, SingleEntry) {
  std::unordered_map<int, std::string> m{{5, "five"}};
  const auto drained = drain_sorted(m);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].first, 5);
  EXPECT_EQ(drained[0].second, "five");
  EXPECT_TRUE(m.empty());
}

TEST(DrainSorted, ManyEntriesSortedAndContainerEmptied) {
  std::unordered_map<int, int> m;
  for (const int k : {8, 3, 11, 1, 6}) m[k] = k * k;
  const auto drained = drain_sorted(m);
  ASSERT_EQ(drained.size(), 5u);
  const std::vector<int> expect_keys{1, 3, 6, 8, 11};
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].first, expect_keys[i]);
    EXPECT_EQ(drained[i].second, expect_keys[i] * expect_keys[i]);
  }
  EXPECT_TRUE(m.empty());
}

TEST(DrainSorted, MoveOnlyValuesAreMovedNotCopied) {
  std::unordered_map<int, std::unique_ptr<int>> m;
  m.emplace(2, std::make_unique<int>(20));
  m.emplace(1, std::make_unique<int>(10));
  const auto drained = drain_sorted(m);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(*drained[0].second, 10);
  EXPECT_EQ(*drained[1].second, 20);
  EXPECT_TRUE(m.empty());
}

TEST(DrainSorted, SetOverload) {
  std::unordered_set<int> s{4, 1, 3};
  EXPECT_EQ(drain_sorted(s), (std::vector<int>{1, 3, 4}));
  EXPECT_TRUE(s.empty());
}

// Stability in the only sense meaningful for unique-key containers:
// the same contents always drain in the same order, however the hash
// table arrived at them (insertion order, rehashes, erase/re-insert).
TEST(DrainSorted, OrderInvariantToContainerHistory) {
  std::unordered_map<int, int> a;
  a.reserve(1);  // force a different resize history than b
  for (int k = 0; k < 200; ++k) a[k] = k;

  std::unordered_map<int, int> b;
  b.reserve(1024);
  for (int k = 199; k >= 0; --k) b[k] = k;
  for (int k = 0; k < 200; k += 3) b.erase(k);
  for (int k = 0; k < 200; k += 3) b[k] = k;  // re-insert: new bucket slots

  EXPECT_EQ(drain_sorted(a), drain_sorted(b));
}

}  // namespace
}  // namespace qnetp::qbase
