#include "qbase/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qnetp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(10), 10u);
  }
  // n=1 must always give 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, GeometricAttemptsMean) {
  Rng rng(19);
  const double p = 0.01;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.geometric_attempts(p));
  // Mean of geometric on {1,2,...} is 1/p.
  EXPECT_NEAR(sum / n, 1.0 / p, 3.0);
}

TEST(Rng, GeometricAttemptsCertainSuccess) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric_attempts(1.0), 1u);
}

TEST(Rng, GeometricAttemptsTinyProbability) {
  Rng rng(29);
  // Must not overflow or return zero for very small p.
  const auto n = rng.geometric_attempts(1e-9);
  EXPECT_GE(n, 1u);
}

TEST(Rng, DiscreteDistribution) {
  Rng rng(31);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.discrete(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  // Streams should differ from each other and from the parent's continued
  // output.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ExponentialDurationMean) {
  using namespace qnetp::literals;
  Rng rng(37);
  double sum_ms = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum_ms += rng.exponential_duration(10_ms).as_ms();
  EXPECT_NEAR(sum_ms / n, 10.0, 0.5);
}

}  // namespace
}  // namespace qnetp
