#include "qbase/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace qnetp {
namespace {

/// Pearson correlation of two equal-length series.
double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(10), 10u);
  }
  // n=1 must always give 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, GeometricAttemptsMean) {
  Rng rng(19);
  const double p = 0.01;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.geometric_attempts(p));
  // Mean of geometric on {1,2,...} is 1/p.
  EXPECT_NEAR(sum / n, 1.0 / p, 3.0);
}

TEST(Rng, GeometricAttemptsCertainSuccess) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric_attempts(1.0), 1u);
}

TEST(Rng, GeometricAttemptsTinyProbability) {
  Rng rng(29);
  // Must not overflow or return zero for very small p.
  const auto n = rng.geometric_attempts(1e-9);
  EXPECT_GE(n, 1u);
}

TEST(Rng, DiscreteDistribution) {
  Rng rng(31);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.discrete(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  // Streams should differ from each other and from the parent's continued
  // output.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// Golden output vectors: guard against accidental changes to the
// generator or seeding algorithm. A change here invalidates every
// committed regression baseline — regenerate them all or revert.
TEST(Rng, GoldenSequenceSeed42) {
  const std::uint64_t expected[8] = {
      0x15780b2e0c2ec716ull, 0x6104d9866d113a7eull, 0xae17533239e499a1ull,
      0xecb8ad4703b360a1ull, 0xfde6dc7fe2ec5e64ull, 0xc50da53101795238ull,
      0xb82154855a65ddb2ull, 0xd99a2743ebe60087ull,
  };
  Rng rng(42);
  for (const std::uint64_t want : expected) EXPECT_EQ(rng.next(), want);
}

TEST(Rng, GoldenSequenceDefaultSeed) {
  const std::uint64_t expected[4] = {
      0x422ea740d0977210ull, 0xe062b061b42e2928ull, 0x5a071fc5930841b6ull,
      0x01334ef8ed3cc2bdull,
  };
  Rng rng;
  for (const std::uint64_t want : expected) EXPECT_EQ(rng.next(), want);
}

TEST(Rng, GoldenDerivedStreamSeeds) {
  const std::uint64_t expected[4] = {
      0xfe5b4c3f9ef6d5dfull, 0x568c16d91a1515c1ull, 0x571dd3fb57264235ull,
      0x926ebd2b5f02c66eull,
  };
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(derive_stream_seed(99, i), expected[i]);
  }
}

TEST(Rng, DerivedStreamSeedsAreCounterBased) {
  // Same (base, index) from any call order gives the same seed, and
  // distinct indices/bases give distinct seeds.
  EXPECT_EQ(derive_stream_seed(7, 123), derive_stream_seed(7, 123));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(derive_stream_seed(7, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(derive_stream_seed(7, 0), derive_stream_seed(8, 0));
}

TEST(Rng, ForkedStreamsUncorrelated) {
  Rng parent(2024);
  Rng child = parent.fork();
  const int n = 50000;
  std::vector<double> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = parent.uniform();
    b[i] = child.uniform();
  }
  // lag-0 and lag-1 cross-correlations are ~N(0, 1/sqrt(n)); 0.02 is
  // ~4.5 sigma at n=50000.
  EXPECT_LT(std::abs(pearson(a, b)), 0.02);
  std::vector<double> a_lag(a.begin() + 1, a.end());
  std::vector<double> b_cut(b.begin(), b.end() - 1);
  EXPECT_LT(std::abs(pearson(a_lag, b_cut)), 0.02);
}

TEST(Rng, TrialDerivedStreamsUncorrelated) {
  // Adjacent trial-index-derived streams (the TrialRunner seeding path)
  // must not correlate: this is what makes per-trial physics independent.
  Rng s0(derive_stream_seed(5000, 0));
  Rng s1(derive_stream_seed(5000, 1));
  const int n = 50000;
  std::vector<double> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = s0.uniform();
    b[i] = s1.uniform();
  }
  EXPECT_LT(std::abs(pearson(a, b)), 0.02);
  std::vector<double> a_lag(a.begin() + 1, a.end());
  std::vector<double> b_cut(b.begin(), b.end() - 1);
  EXPECT_LT(std::abs(pearson(a_lag, b_cut)), 0.02);
  // And their means both look uniform (no shared drift).
  double ma = 0.0, mb = 0.0;
  for (int i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  EXPECT_NEAR(ma / n, 0.5, 0.01);
  EXPECT_NEAR(mb / n, 0.5, 0.01);
}

TEST(Rng, ExponentialDurationMean) {
  using namespace qnetp::literals;
  Rng rng(37);
  double sum_ms = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum_ms += rng.exponential_duration(10_ms).as_ms();
  EXPECT_NEAR(sum_ms / n, 10.0, 0.5);
}

}  // namespace
}  // namespace qnetp
