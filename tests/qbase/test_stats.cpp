#include "qbase/stats.hpp"

#include <gtest/gtest.h>

namespace qnetp {
namespace {

using namespace qnetp::literals;

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, EmptyAsserts) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), AssertionError);
  EXPECT_THROW(s.min(), AssertionError);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
}

TEST(SampleSet, QuantileSingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, CdfPointsMonotonic) {
  SampleSet s;
  for (int i = 0; i < 57; ++i) s.add(static_cast<double>((i * 37) % 101));
  const auto pts = s.cdf_points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // add after a sorted query must re-sort
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RateMeter, WindowedRate) {
  RateMeter m;
  m.record(TimePoint::origin() + 1_s);
  m.record(TimePoint::origin() + 2_s);
  m.record(TimePoint::origin() + 3_s);
  m.record(TimePoint::origin() + 9_s);
  // Window [0, 4s): 3 events -> 0.75/s.
  EXPECT_DOUBLE_EQ(
      m.rate_per_second(TimePoint::origin(), TimePoint::origin() + 4_s),
      0.75);
  // Window [2s, 4s): 2 events -> 1/s.
  EXPECT_DOUBLE_EQ(m.rate_per_second(TimePoint::origin() + 2_s,
                                     TimePoint::origin() + 4_s),
                   1.0);
  EXPECT_DOUBLE_EQ(m.count(), 4.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.count(), 0.0);
}

TEST(RateMeter, WeightedAmounts) {
  RateMeter m;
  m.record(TimePoint::origin() + 1_s, 2.5);
  m.record(TimePoint::origin() + 2_s, 0.5);
  EXPECT_DOUBLE_EQ(
      m.rate_per_second(TimePoint::origin(), TimePoint::origin() + 3_s),
      1.0);
}

TEST(RateMeter, OutOfOrderRecordsStillCounted) {
  RateMeter m;
  m.record(TimePoint::origin() + 3_s);
  m.record(TimePoint::origin() + 1_s);
  m.record(TimePoint::origin() + 2_s);
  EXPECT_DOUBLE_EQ(
      m.rate_per_second(TimePoint::origin(), TimePoint::origin() + 4_s),
      0.75);
  EXPECT_DOUBLE_EQ(m.rate_per_second(TimePoint::origin() + 1_s,
                                     TimePoint::origin() + 2_s),
                   1.0);
}

TEST(RateMeter, RetentionBoundsMemory) {
  RateMeter m;
  m.set_retention(10_s);
  for (int i = 0; i < 100000; ++i) {
    m.record(TimePoint::origin() + Duration::ms(i));
  }
  // 100 s of events recorded, 10 s retained (amortised pruning keeps at
  // most ~2x the window resident): history stays flat.
  EXPECT_LE(m.events_retained(), 20002u);
  EXPECT_DOUBLE_EQ(m.count(), 100000.0);  // all-time total unaffected
  // Recent windows are exact: 1000 events/s.
  EXPECT_DOUBLE_EQ(m.rate_per_second(TimePoint::origin() + 95_s,
                                     TimePoint::origin() + 99_s),
                   1000.0);
}

TEST(RateMeter, ManualPruneKeepsTotalsAndRecentWindows) {
  RateMeter m;
  for (int i = 0; i < 10; ++i) {
    m.record(TimePoint::origin() + Duration::seconds(i));
  }
  m.prune_before(TimePoint::origin() + 5_s);
  EXPECT_EQ(m.events_retained(), 5u);
  EXPECT_DOUBLE_EQ(m.count(), 10.0);
  EXPECT_DOUBLE_EQ(m.rate_per_second(TimePoint::origin() + 5_s,
                                     TimePoint::origin() + 10_s),
                   1.0);
}

TEST(RateMeter, QueryIsConsistentBeforeAndAfterPrune) {
  RateMeter pruned;
  RateMeter full;
  for (int i = 0; i < 1000; ++i) {
    const TimePoint t = TimePoint::origin() + Duration::ms(i * 7);
    pruned.record(t, 0.5);
    full.record(t, 0.5);
  }
  pruned.prune_before(TimePoint::origin() + 3_s);
  // Windows entirely past the cutoff agree exactly with the unpruned
  // meter.
  EXPECT_DOUBLE_EQ(pruned.rate_per_second(TimePoint::origin() + 3_s,
                                          TimePoint::origin() + 7_s),
                   full.rate_per_second(TimePoint::origin() + 3_s,
                                        TimePoint::origin() + 7_s));
}

TEST(BootstrapCi, ContainsMeanAndIsDeterministic) {
  std::vector<double> samples;
  Rng gen(404);
  for (int i = 0; i < 40; ++i) samples.push_back(gen.normal(10.0, 2.0));
  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= static_cast<double>(samples.size());

  Rng rng_a(1), rng_b(1);
  const auto ci_a = bootstrap_mean_ci(samples, 1000, 0.05, rng_a);
  const auto ci_b = bootstrap_mean_ci(samples, 1000, 0.05, rng_b);
  EXPECT_DOUBLE_EQ(ci_a.lo, ci_b.lo);  // deterministic given the rng
  EXPECT_DOUBLE_EQ(ci_a.hi, ci_b.hi);
  EXPECT_TRUE(ci_a.contains(mean));
  EXPECT_GT(ci_a.width(), 0.0);
  // The 95% CI of the mean of 40 N(10,2) samples is well inside +-2.
  EXPECT_GT(ci_a.lo, 8.0);
  EXPECT_LT(ci_a.hi, 12.0);
}

TEST(BootstrapCi, NarrowsWithMoreSamples) {
  Rng gen(405);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(gen.normal(0.0, 1.0));
  for (int i = 0; i < 2000; ++i) large.push_back(gen.normal(0.0, 1.0));
  Rng rng_a(2), rng_b(2);
  const auto wide = bootstrap_mean_ci(small, 500, 0.05, rng_a);
  const auto narrow = bootstrap_mean_ci(large, 500, 0.05, rng_b);
  EXPECT_LT(narrow.width(), wide.width());
}

TEST(BootstrapCi, DegenerateSampleSet) {
  const std::vector<double> constant(10, 3.25);
  Rng rng(3);
  const auto ci = bootstrap_mean_ci(constant, 200, 0.05, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.25);
  EXPECT_DOUBLE_EQ(ci.hi, 3.25);
}

TEST(DurationStats, RecordsMilliseconds) {
  DurationStats d;
  d.add(10_ms);
  d.add(20_ms);
  d.add(30_ms);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.mean_ms(), 20.0);
  EXPECT_DOUBLE_EQ(d.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(d.max_ms(), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile_ms(0.5), 20.0);
}

}  // namespace
}  // namespace qnetp
