#include "qbase/stats.hpp"

#include <gtest/gtest.h>

namespace qnetp {
namespace {

using namespace qnetp::literals;

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, EmptyAsserts) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), AssertionError);
  EXPECT_THROW(s.min(), AssertionError);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
}

TEST(SampleSet, QuantileSingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, CdfPointsMonotonic) {
  SampleSet s;
  for (int i = 0; i < 57; ++i) s.add(static_cast<double>((i * 37) % 101));
  const auto pts = s.cdf_points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // add after a sorted query must re-sort
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RateMeter, WindowedRate) {
  RateMeter m;
  m.record(TimePoint::origin() + 1_s);
  m.record(TimePoint::origin() + 2_s);
  m.record(TimePoint::origin() + 3_s);
  m.record(TimePoint::origin() + 9_s);
  // Window [0, 4s): 3 events -> 0.75/s.
  EXPECT_DOUBLE_EQ(
      m.rate_per_second(TimePoint::origin(), TimePoint::origin() + 4_s),
      0.75);
  // Window [2s, 4s): 2 events -> 1/s.
  EXPECT_DOUBLE_EQ(m.rate_per_second(TimePoint::origin() + 2_s,
                                     TimePoint::origin() + 4_s),
                   1.0);
  EXPECT_DOUBLE_EQ(m.count(), 4.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.count(), 0.0);
}

TEST(RateMeter, WeightedAmounts) {
  RateMeter m;
  m.record(TimePoint::origin() + 1_s, 2.5);
  m.record(TimePoint::origin() + 2_s, 0.5);
  EXPECT_DOUBLE_EQ(
      m.rate_per_second(TimePoint::origin(), TimePoint::origin() + 3_s),
      1.0);
}

TEST(DurationStats, RecordsMilliseconds) {
  DurationStats d;
  d.add(10_ms);
  d.add(20_ms);
  d.add(30_ms);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.mean_ms(), 20.0);
  EXPECT_DOUBLE_EQ(d.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(d.max_ms(), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile_ms(0.5), 20.0);
}

}  // namespace
}  // namespace qnetp
