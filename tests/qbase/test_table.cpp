#include "qbase/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "qbase/assert.hpp"

namespace qnetp {
namespace {

TEST(TablePrinter, AlignedOutput) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinter, CsvEscapesSeparatorsQuotesAndNewlines) {
  TablePrinter t({"plain", "with,comma"});
  t.add_row({"say \"hi\"", "line1\nline2"});
  t.add_row({"trailing\r", "clean"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\"\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n"
            "\"trailing\r\",clean\n");
}

TEST(TablePrinter, CsvLeavesPlainCellsUntouched) {
  TablePrinter t({"a", "b"});
  t.add_row({"1.5e-3", "x y z"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.5e-3,x y z\n");
}

TEST(TablePrinter, RowWidthMismatchAsserts) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(1.5), "1.5");
  EXPECT_EQ(TablePrinter::num(0.123456789, 3), "0.123");
}

TEST(TablePrinter, Banner) {
  std::ostringstream os;
  print_banner(os, "Fig 5");
  EXPECT_EQ(os.str(), "\n=== Fig 5 ===\n");
}

}  // namespace
}  // namespace qnetp
