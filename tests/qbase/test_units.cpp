#include "qbase/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qnetp {
namespace {

using namespace qnetp::literals;

TEST(Duration, LiteralsAndConversions) {
  EXPECT_EQ((1_ns).count_ps(), 1000);
  EXPECT_EQ((1_us).count_ps(), 1'000'000);
  EXPECT_EQ((1_ms).count_ps(), 1'000'000'000);
  EXPECT_EQ((1_s).count_ps(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ((2.5_ms).as_ms(), 2.5);
  EXPECT_DOUBLE_EQ((1500_us).as_ms(), 1.5);
  EXPECT_DOUBLE_EQ((0.5_s).as_seconds(), 0.5);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(1_ms + 500_us, 1.5_ms);
  EXPECT_EQ(1_ms - 1500_us, -(0.5_ms));
  EXPECT_EQ((2_ms) * 2.0, 4_ms);
  EXPECT_EQ((2_ms) / 2.0, 1_ms);
  EXPECT_DOUBLE_EQ((3_ms) / (1.5_ms), 2.0);
  Duration d = 1_s;
  d += 1_ms;
  EXPECT_EQ(d.count_ps(), 1'001'000'000'000);
  d -= 1_ms;
  EXPECT_EQ(d, 1_s);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_us, 1_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(5_ns, 5_ns);
  EXPECT_TRUE((0_ns).is_zero());
  EXPECT_TRUE((1_us - 2_us).is_negative());
  EXPECT_FALSE((1_us).is_negative());
}

TEST(Duration, SubPicosecondRoundsToNearest) {
  // 0.4 ps rounds to 0, 0.6 ps rounds to 1.
  EXPECT_EQ(Duration::ns(0.0004).count_ps(), 0);
  EXPECT_EQ(Duration::ns(0.0006).count_ps(), 1);
}

TEST(Duration, MaxActsAsInfinity) {
  EXPECT_GT(Duration::max(), 1000000_s);
  EXPECT_EQ(Duration::max(), Duration::max());
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0), 5_ms);
  EXPECT_EQ(t1 - 5_ms, t0);
  EXPECT_LT(t0, t1);
  TimePoint t = t0;
  t += 1_s;
  EXPECT_DOUBLE_EQ(t.as_seconds(), 1.0);
}

TEST(TimePoint, MaxIsSentinel) {
  EXPECT_GT(TimePoint::max(), TimePoint::origin() + 1000000_s);
}

TEST(UnitsFormatting, HumanReadable) {
  EXPECT_EQ((500_ps).to_string(), "500ps");
  EXPECT_EQ((10_ns).to_string(), "10ns");
  EXPECT_EQ((250_us).to_string(), "250us");
  EXPECT_EQ((10_ms).to_string(), "10ms");
  EXPECT_EQ((2_s).to_string(), "2s");
  std::ostringstream os;
  os << 10_ms;
  EXPECT_EQ(os.str(), "10ms");
}

}  // namespace
}  // namespace qnetp
