#include "qdevice/device.hpp"

#include <gtest/gtest.h>

#include "qbase/stats.hpp"

namespace qnetp::qdevice {
namespace {

using namespace qnetp::literals;
using qstate::Basis;
using qstate::BellIndex;
using qstate::TwoQubitState;

// Test fixture wiring two devices (as if at adjacent nodes) plus helpers
// to mint link pairs the way the link layer will.
class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : rng_(42),
        dev_a_(sim_, rng_, registry_, qhw::simulation_preset(), NodeId{1}),
        dev_m_(sim_, rng_, registry_, qhw::simulation_preset(), NodeId{2}),
        dev_b_(sim_, rng_, registry_, qhw::simulation_preset(), NodeId{3}) {
    dev_a_.memory().add_link_pool(LinkId{12}, 4);
    dev_m_.memory().add_link_pool(LinkId{12}, 4);
    dev_m_.memory().add_link_pool(LinkId{23}, 4);
    dev_b_.memory().add_link_pool(LinkId{23}, 4);
  }

  /// Mint an entangled pair between two devices, as the link layer does.
  struct MintedPair {
    PairPtr pair;
    QubitId left_qubit;
    QubitId right_qubit;
  };
  MintedPair mint(QuantumDevice& left, QuantumDevice& right, LinkId link,
                  TwoQubitState state, BellIndex announced) {
    const auto ql = left.memory().try_alloc_comm(link, sim_.now());
    const auto qr = right.memory().try_alloc_comm(link, sim_.now());
    EXPECT_TRUE(ql && qr);
    auto pair = std::make_shared<EntangledPair>(
        PairId{next_pair_++}, std::move(state), announced,
        EntangledPair::Side{left.node(), *ql,
                            left.hardware().electron_memory()},
        EntangledPair::Side{right.node(), *qr,
                            right.hardware().electron_memory()},
        sim_.now());
    registry_.bind(QubitEndpoint{left.node(), *ql}, pair, 0);
    registry_.bind(QubitEndpoint{right.node(), *qr}, pair, 1);
    return MintedPair{pair, *ql, *qr};
  }

  des::Simulator sim_;
  Rng rng_;
  PairRegistry registry_;
  QuantumDevice dev_a_;
  QuantumDevice dev_m_;
  QuantumDevice dev_b_;
  std::uint64_t next_pair_ = 1;
};

TEST_F(DeviceTest, SwapMergesPairsAndFreesLocalQubits) {
  auto left = mint(dev_a_, dev_m_, LinkId{12},
                   TwoQubitState::bell(BellIndex::phi_plus()),
                   BellIndex::phi_plus());
  auto right = mint(dev_m_, dev_b_, LinkId{23},
                    TwoQubitState::bell(BellIndex::psi_plus()),
                    BellIndex::psi_plus());

  bool completed = false;
  dev_m_.entanglement_swap(
      left.right_qubit, right.left_qubit,
      [&](const SwapCompletion& c) {
        completed = true;
        // Merged pair spans A and B.
        EXPECT_EQ(c.new_pair->side(0).node, NodeId{1});
        EXPECT_EQ(c.new_pair->side(1).node, NodeId{3});
        // Tracked frame: phi+ ^ psi+ ^ announced.
        const BellIndex expect =
            BellIndex::phi_plus() ^ BellIndex::psi_plus() ^ c.announced;
        EXPECT_EQ(c.new_pair->announced_bell(), expect);
        // Physical state matches (noise is tiny at these parameters).
        EXPECT_GT(c.new_pair->oracle_fidelity(sim_.now()), 0.98);
      });
  sim_.run();
  EXPECT_TRUE(completed);
  // Swap took the two-qubit gate plus two readouts.
  EXPECT_EQ(sim_.now(), TimePoint::origin() + 500_us + 3.7_us + 3.7_us);
  // Middle node's qubits returned to their pools.
  EXPECT_EQ(dev_m_.memory().free_comm_count(LinkId{12}), 4u);
  EXPECT_EQ(dev_m_.memory().free_comm_count(LinkId{23}), 4u);
  // Outer endpoints rebound to the merged pair.
  const auto binding =
      registry_.find(QubitEndpoint{NodeId{1}, left.left_qubit});
  ASSERT_TRUE(binding);
  EXPECT_EQ(binding->side, 0);
}

TEST_F(DeviceTest, SwapOrientationIndependence) {
  // Whichever argument order / side layout, the merged pair must span the
  // two outer endpoints. Here the middle node holds side 1 of BOTH pairs
  // (second pair minted "backwards").
  auto left = mint(dev_a_, dev_m_, LinkId{12},
                   TwoQubitState::bell(BellIndex::phi_plus()),
                   BellIndex::phi_plus());
  auto right = mint(dev_b_, dev_m_, LinkId{23},
                    TwoQubitState::bell(BellIndex::phi_plus()),
                    BellIndex::phi_plus());
  bool completed = false;
  dev_m_.entanglement_swap(left.right_qubit, right.right_qubit,
                           [&](const SwapCompletion& c) {
                             completed = true;
                             EXPECT_EQ(c.new_pair->side(0).node, NodeId{1});
                             EXPECT_EQ(c.new_pair->side(1).node, NodeId{3});
                             EXPECT_GT(c.new_pair->oracle_fidelity(sim_.now()),
                                       0.98);
                           });
  sim_.run();
  EXPECT_TRUE(completed);
}

TEST_F(DeviceTest, SwapXorFrameStatisticallyConsistent) {
  // Over many swaps, the merged announced frame must equal the physical
  // best Bell state in the overwhelming majority of cases (readout error
  // is 0.2%).
  int agree = 0;
  const int trials = 64;
  for (int i = 0; i < trials; ++i) {
    auto left = mint(dev_a_, dev_m_, LinkId{12},
                     TwoQubitState::bell(BellIndex::psi_plus()),
                     BellIndex::psi_plus());
    auto right = mint(dev_m_, dev_b_, LinkId{23},
                      TwoQubitState::bell(BellIndex::psi_plus()),
                      BellIndex::psi_plus());
    PairPtr merged;
    dev_m_.entanglement_swap(left.right_qubit, right.left_qubit,
                             [&](const SwapCompletion& c) {
                               merged = c.new_pair;
                             });
    sim_.run();
    ASSERT_TRUE(merged != nullptr);
    const auto [best, f] = merged->state_at(sim_.now()).best_bell();
    if (best == merged->announced_bell()) ++agree;
    // Clean up for next iteration.
    dev_a_.discard(left.left_qubit);
    dev_b_.discard(right.right_qubit);
  }
  EXPECT_GE(agree, trials - 4);
}

TEST_F(DeviceTest, MeasureConsumesQubitAndAppliesReadoutError) {
  auto pair = mint(dev_a_, dev_m_, LinkId{12},
                   TwoQubitState::bell(BellIndex::phi_plus()),
                   BellIndex::phi_plus());
  int outcome_a = -1, outcome_b = -1;
  dev_a_.measure(pair.left_qubit, Basis::z,
                 [&](int o) { outcome_a = o; });
  dev_m_.measure(pair.right_qubit, Basis::z,
                 [&](int o) { outcome_b = o; });
  sim_.run();
  ASSERT_NE(outcome_a, -1);
  ASSERT_NE(outcome_b, -1);
  EXPECT_TRUE(dev_a_.memory().all_free());
  EXPECT_TRUE(dev_m_.memory().all_free());
  EXPECT_TRUE(registry_.empty());
}

TEST_F(DeviceTest, MeasurementCorrelationStatistics) {
  int equal = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto pair = mint(dev_a_, dev_m_, LinkId{12},
                     TwoQubitState::bell(BellIndex::phi_plus()),
                     BellIndex::phi_plus());
    int oa = -1, ob = -1;
    dev_a_.measure(pair.left_qubit, Basis::z, [&](int o) { oa = o; });
    dev_m_.measure(pair.right_qubit, Basis::z, [&](int o) { ob = o; });
    sim_.run();
    if (oa == ob) ++equal;
  }
  // Phi+ perfectly correlated in Z up to the 0.2% readout flips per side.
  EXPECT_GE(equal, trials - 8);
}

TEST_F(DeviceTest, PauliCorrectMovesFrame) {
  auto pair = mint(dev_a_, dev_m_, LinkId{12},
                   TwoQubitState::bell(BellIndex::psi_minus()),
                   BellIndex::psi_minus());
  bool done = false;
  dev_a_.pauli_correct(pair.left_qubit, BellIndex::phi_plus(), [&] {
    done = true;
  });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(pair.pair->announced_bell(), BellIndex::phi_plus());
  EXPECT_GT(pair.pair->oracle_fidelity(sim_.now()), 0.99);
  // Correction is fast (single-qubit gate, 5 ns).
  EXPECT_EQ(sim_.now(), TimePoint::origin() + 5_ns);
}

TEST_F(DeviceTest, DiscardBreaksPairAndFrees) {
  auto pair = mint(dev_a_, dev_m_, LinkId{12},
                   TwoQubitState::bell(BellIndex::phi_plus()),
                   BellIndex::phi_plus());
  dev_a_.discard(pair.left_qubit);
  EXPECT_TRUE(pair.pair->broken());
  EXPECT_EQ(dev_a_.memory().free_comm_count(LinkId{12}), 4u);
  // Partner's oracle fidelity collapses to 0.25.
  EXPECT_NEAR(pair.pair->oracle_fidelity(sim_.now()), 0.25, 1e-9);
  // Partner qubit still allocated until its own discard.
  EXPECT_TRUE(dev_m_.memory().is_allocated(pair.right_qubit));
  dev_m_.discard(pair.right_qubit);
  EXPECT_TRUE(dev_m_.memory().all_free());
}

TEST_F(DeviceTest, ReleaseUnusedRejectsBoundQubit) {
  auto pair = mint(dev_a_, dev_m_, LinkId{12},
                   TwoQubitState::bell(BellIndex::phi_plus()),
                   BellIndex::phi_plus());
  EXPECT_THROW(dev_a_.release_unused(pair.left_qubit), AssertionError);
  const auto spare = dev_a_.memory().try_alloc_comm(LinkId{12}, sim_.now());
  ASSERT_TRUE(spare);
  dev_a_.release_unused(*spare);  // fine: no pair side attached
}

TEST_F(DeviceTest, SerializedModeQueuesOps) {
  dev_m_.set_serialized(true);
  auto p1 = mint(dev_a_, dev_m_, LinkId{12},
                 TwoQubitState::bell(BellIndex::phi_plus()),
                 BellIndex::phi_plus());
  auto p2 = mint(dev_m_, dev_b_, LinkId{23},
                 TwoQubitState::bell(BellIndex::phi_plus()),
                 BellIndex::phi_plus());
  TimePoint t_measure, t_correct;
  // Two ops on the serialized device: the second starts after the first.
  dev_m_.measure(p1.right_qubit, Basis::z, [&](int) { t_measure = sim_.now(); });
  dev_m_.pauli_correct(p2.left_qubit, BellIndex::phi_plus(),
                       [&] { t_correct = sim_.now(); });
  sim_.run();
  // measure = 3.7us readout; correction 5ns executes after it.
  EXPECT_EQ(t_measure, TimePoint::origin() + 3.7_us);
  EXPECT_EQ(t_correct, TimePoint::origin() + 3.7_us + 5_ns);
}

TEST_F(DeviceTest, AttemptDephasingHitsOnlyStorageQubits) {
  // Build a near-term style device with storage.
  QuantumDevice dev_nt(sim_, rng_, registry_, qhw::near_term_preset(),
                       NodeId{9});
  dev_nt.memory().set_shared_comm_pool(1);
  dev_nt.memory().add_storage(2);

  // Mint a pair ending on the near-term node's comm qubit.
  const auto qc = dev_nt.memory().try_alloc_comm(LinkId{12}, sim_.now());
  ASSERT_TRUE(qc);
  auto pair = std::make_shared<EntangledPair>(
      PairId{77}, TwoQubitState::bell(BellIndex::psi_plus()),
      BellIndex::psi_plus(),
      EntangledPair::Side{NodeId{9}, *qc,
                          dev_nt.hardware().electron_memory()},
      EntangledPair::Side{NodeId{1}, QubitId{1000},
                          qstate::MemoryDecay{}},
      sim_.now());
  registry_.bind(QubitEndpoint{NodeId{9}, *qc}, pair, 0);

  // While on the communication qubit, attempt dephasing must NOT apply.
  dev_nt.apply_attempt_dephasing(1000);
  EXPECT_NEAR(pair->oracle_fidelity(sim_.now()), 1.0, 1e-9);

  // Move to storage, then attempts do degrade it.
  QubitId storage;
  dev_nt.move_to_storage(*qc, [&](QubitId s) { storage = s; });
  sim_.run();
  ASSERT_TRUE(storage.valid());
  const double f_before = pair->oracle_fidelity(sim_.now());
  dev_nt.apply_attempt_dephasing(5000);
  const double f_after = pair->oracle_fidelity(sim_.now());
  EXPECT_LT(f_after, f_before - 0.01);
}

TEST_F(DeviceTest, MoveToStorageFailsWhenStorageExhausted) {
  QuantumDevice dev_nt(sim_, rng_, registry_, qhw::near_term_preset(),
                       NodeId{9});
  dev_nt.memory().set_shared_comm_pool(2);
  dev_nt.memory().add_storage(0);
  const auto qc = dev_nt.memory().try_alloc_comm(LinkId{12}, sim_.now());
  ASSERT_TRUE(qc);
  auto pair = std::make_shared<EntangledPair>(
      PairId{78}, TwoQubitState::bell(BellIndex::psi_plus()),
      BellIndex::psi_plus(),
      EntangledPair::Side{NodeId{9}, *qc, qstate::MemoryDecay{}},
      EntangledPair::Side{NodeId{1}, QubitId{1000}, qstate::MemoryDecay{}},
      sim_.now());
  registry_.bind(QubitEndpoint{NodeId{9}, *qc}, pair, 0);
  bool called = false;
  dev_nt.move_to_storage(*qc, [&](QubitId s) {
    called = true;
    EXPECT_FALSE(s.valid());
  });
  sim_.run();
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace qnetp::qdevice
