#include "qdevice/entangled_pair.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qnetp::qdevice {
namespace {

using namespace qnetp::literals;
using qstate::Basis;
using qstate::BellIndex;
using qstate::MemoryDecay;
using qstate::TwoQubitState;

EntangledPair::Side side(std::uint64_t node, std::uint64_t qubit,
                         MemoryDecay decay = MemoryDecay{}) {
  return EntangledPair::Side{NodeId{node}, QubitId{qubit}, decay};
}

TEST(EntangledPair, ConstructionAndLookup) {
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::psi_plus()),
                  BellIndex::psi_plus(), side(1, 10), side(2, 20),
                  TimePoint::origin());
  EXPECT_EQ(p.id(), PairId{1});
  EXPECT_EQ(p.announced_bell(), BellIndex::psi_plus());
  EXPECT_EQ(p.side_of(NodeId{1}, QubitId{10}), 0);
  EXPECT_EQ(p.side_of(NodeId{2}, QubitId{20}), 1);
  EXPECT_EQ(p.side_of(NodeId{3}, QubitId{10}), -1);
  EXPECT_FALSE(p.broken());
}

TEST(EntangledPair, LazyDecoherenceAdvances) {
  const MemoryDecay decay{Duration::max(), 1_s};
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10, decay),
                  side(2, 20, decay), TimePoint::origin());
  // After 1 s on both sides, coherence drops by e^-2.
  const double f = p.oracle_fidelity(TimePoint::origin() + 1_s);
  EXPECT_NEAR(f, 0.5 * (1.0 + std::exp(-2.0)), 1e-9);
}

TEST(EntangledPair, AdvanceIsIdempotentAtSameInstant) {
  const MemoryDecay decay{Duration::max(), 1_s};
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10, decay),
                  side(2, 20, decay), TimePoint::origin());
  const TimePoint t = TimePoint::origin() + 500_ms;
  const double f1 = p.oracle_fidelity(t);
  const double f2 = p.oracle_fidelity(t);
  EXPECT_DOUBLE_EQ(f1, f2);
}

TEST(EntangledPair, IncrementalAdvanceEqualsOneShot) {
  const MemoryDecay decay{Duration::max(), 2_s};
  EntangledPair a(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10, decay),
                  side(2, 20, decay), TimePoint::origin());
  EntangledPair b(PairId{2}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 11, decay),
                  side(2, 21, decay), TimePoint::origin());
  // a: advance in 10 steps; b: advance once.
  for (int i = 1; i <= 10; ++i) {
    a.advance_to(TimePoint::origin() + Duration::ms(100 * i));
  }
  const double fa = a.oracle_fidelity(TimePoint::origin() + 1_s);
  const double fb = b.oracle_fidelity(TimePoint::origin() + 1_s);
  EXPECT_NEAR(fa, fb, 1e-9);
}

TEST(EntangledPair, TimeBackwardsAsserts) {
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10), side(2, 20),
                  TimePoint::origin() + 1_s);
  EXPECT_THROW(p.advance_to(TimePoint::origin()), AssertionError);
}

TEST(EntangledPair, RehomeChangesDecayModel) {
  const MemoryDecay fast{Duration::max(), 10_ms};
  const MemoryDecay slow{Duration::max(), 60_s};
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10, fast),
                  side(2, 20, MemoryDecay{}), TimePoint::origin());
  // Move side 0 into slow storage at t=0: decay should now be slow.
  p.rehome_side(0, QubitId{99}, slow, TimePoint::origin());
  EXPECT_EQ(p.side_of(NodeId{1}, QubitId{99}), 0);
  EXPECT_EQ(p.side_of(NodeId{1}, QubitId{10}), -1);
  const double f = p.oracle_fidelity(TimePoint::origin() + 1_s);
  EXPECT_GT(f, 0.98);  // 1 s on a 60 s memory barely hurts
}

TEST(EntangledPair, MeasurementCorrelationsSurviveAcrossSides) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::psi_plus()),
                    BellIndex::psi_plus(), side(1, 10), side(2, 20),
                    TimePoint::origin());
    const int a = p.measure_side(0, Basis::z, TimePoint::origin(), rng);
    const int b = p.measure_side(1, Basis::z, TimePoint::origin(), rng);
    EXPECT_NE(a, b);  // Psi+ anti-correlated in Z
  }
}

TEST(EntangledPair, PauliCorrectToChangesFrameAndState) {
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::psi_plus()),
                  BellIndex::psi_plus(), side(1, 10), side(2, 20),
                  TimePoint::origin());
  p.pauli_correct_to(0, BellIndex::phi_plus(), TimePoint::origin());
  EXPECT_EQ(p.announced_bell(), BellIndex::phi_plus());
  EXPECT_NEAR(p.oracle_fidelity(TimePoint::origin()), 1.0, 1e-9);
}

TEST(EntangledPair, BreakSideLeavesUncorrelatedReducedState) {
  Rng rng(11);
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10), side(2, 20),
                  TimePoint::origin());
  p.break_side(0, TimePoint::origin());
  EXPECT_TRUE(p.broken());
  // Fidelity to any Bell state is now 0.25 (junk).
  for (BellIndex b : qstate::all_bell_indices()) {
    EXPECT_NEAR(p.oracle_fidelity(b, TimePoint::origin()), 0.25, 1e-9);
  }
  // Surviving side measures 0/1 with equal probability.
  int zeros = 0;
  for (int i = 0; i < 400; ++i) {
    EntangledPair q(PairId{2}, TwoQubitState::bell(BellIndex::phi_plus()),
                    BellIndex::phi_plus(), side(1, 10), side(2, 20),
                    TimePoint::origin());
    q.break_side(0, TimePoint::origin());
    zeros +=
        (q.measure_side(1, Basis::z, TimePoint::origin(), rng) == 0) ? 1 : 0;
  }
  EXPECT_NEAR(zeros / 400.0, 0.5, 0.08);
}

TEST(EntangledPair, NoDecaySidesStayOnFastPathAndLoseNothing) {
  // Both sides T1 = T2 = infinity: advance must be a pure bookkeeping
  // update — no channel application, no representation change.
  EntangledPair p(PairId{1}, TwoQubitState::werner(0.9, BellIndex::psi_plus()),
                  BellIndex::psi_plus(), side(1, 10), side(2, 20),
                  TimePoint::origin());
  for (int i = 1; i <= 50; ++i) {
    p.advance_to(TimePoint::origin() + Duration::seconds(i));
  }
  EXPECT_TRUE(p.state_at(TimePoint::origin() + 51_s).is_bell_diagonal());
  EXPECT_NEAR(p.oracle_fidelity(TimePoint::origin() + 60_s), 0.9, 1e-12);
}

TEST(EntangledPair, FiniteT1AdvanceMatchesLegacyChannelPipeline) {
  // The allocation-free decay application must agree with building the
  // explicit Kraus channel for the same interval (the pre-fast-path
  // pipeline), including the Bell-diagonal fallback.
  const MemoryDecay electron{3600_s, 60_s};
  const MemoryDecay carbon{360_s, 60_s};
  EntangledPair p(PairId{1}, TwoQubitState::werner(0.93, BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10, electron),
                  side(2, 20, carbon), TimePoint::origin());
  TwoQubitState reference(
      TwoQubitState::werner(0.93, BellIndex::phi_plus()).rho());
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 20; ++i) {
    const Duration dt = Duration::ms(37 * (i + 1));
    t += dt;
    reference.apply_channel(0, electron.for_interval(dt));
    reference.apply_channel(1, carbon.for_interval(dt));
    const double f = p.oracle_fidelity(t);
    EXPECT_NEAR(f, reference.fidelity(BellIndex::phi_plus()), 1e-9)
        << "step " << i;
  }
  EXPECT_FALSE(p.state_at(t).is_bell_diagonal());  // fallback triggered
}

TEST(EntangledPair, ExtraDephasingReducesCoherence) {
  EntangledPair p(PairId{1}, TwoQubitState::bell(BellIndex::phi_plus()),
                  BellIndex::phi_plus(), side(1, 10), side(2, 20),
                  TimePoint::origin());
  p.apply_extra_dephasing(0, 0.5);
  const double f = p.oracle_fidelity(TimePoint::origin());
  EXPECT_NEAR(f, 0.75, 1e-9);  // off-diagonal halved
}

}  // namespace
}  // namespace qnetp::qdevice
