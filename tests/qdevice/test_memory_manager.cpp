#include "qdevice/memory_manager.hpp"

#include <gtest/gtest.h>

#include "qbase/assert.hpp"

namespace qnetp::qdevice {
namespace {

using namespace qnetp::literals;

TEST(MemoryManager, PerLinkPoolsAllocateAndExhaust) {
  QuantumMemoryManager qmm(NodeId{1});
  qmm.add_link_pool(LinkId{1}, 2);
  qmm.add_link_pool(LinkId{2}, 1);
  EXPECT_EQ(qmm.total_count(), 3u);
  EXPECT_EQ(qmm.free_comm_count(LinkId{1}), 2u);

  const auto a = qmm.try_alloc_comm(LinkId{1}, TimePoint::origin());
  const auto b = qmm.try_alloc_comm(LinkId{1}, TimePoint::origin());
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  // Pool 1 exhausted; pool 2 unaffected.
  EXPECT_FALSE(qmm.try_alloc_comm(LinkId{1}, TimePoint::origin()));
  EXPECT_TRUE(qmm.try_alloc_comm(LinkId{2}, TimePoint::origin()));
  EXPECT_EQ(qmm.in_use_count(), 3u);
}

TEST(MemoryManager, FreeReturnsToOwningPool) {
  QuantumMemoryManager qmm(NodeId{1});
  qmm.add_link_pool(LinkId{1}, 1);
  qmm.add_link_pool(LinkId{2}, 1);
  const auto a = qmm.try_alloc_comm(LinkId{1}, TimePoint::origin());
  ASSERT_TRUE(a);
  qmm.free(*a);
  EXPECT_EQ(qmm.free_comm_count(LinkId{1}), 1u);
  EXPECT_EQ(qmm.free_comm_count(LinkId{2}), 1u);
  EXPECT_TRUE(qmm.all_free());
}

TEST(MemoryManager, DoubleFreeAsserts) {
  QuantumMemoryManager qmm(NodeId{1});
  qmm.add_link_pool(LinkId{1}, 1);
  const auto a = qmm.try_alloc_comm(LinkId{1}, TimePoint::origin());
  qmm.free(*a);
  EXPECT_THROW(qmm.free(*a), AssertionError);
}

TEST(MemoryManager, UnknownQubitAsserts) {
  QuantumMemoryManager qmm(NodeId{1});
  EXPECT_THROW(qmm.free(QubitId{12345}), AssertionError);
  EXPECT_THROW(qmm.slot(QubitId{12345}), AssertionError);
}

TEST(MemoryManager, SharedCommPool) {
  QuantumMemoryManager qmm(NodeId{1});
  qmm.set_shared_comm_pool(1);
  // Any link draws from the shared pool.
  const auto a = qmm.try_alloc_comm(LinkId{1}, TimePoint::origin());
  ASSERT_TRUE(a);
  EXPECT_FALSE(qmm.try_alloc_comm(LinkId{2}, TimePoint::origin()));
  qmm.free(*a);
  EXPECT_TRUE(qmm.try_alloc_comm(LinkId{2}, TimePoint::origin()));
}

TEST(MemoryManager, MixingPoolModesAsserts) {
  QuantumMemoryManager a(NodeId{1});
  a.set_shared_comm_pool(1);
  EXPECT_THROW(a.add_link_pool(LinkId{1}, 1), AssertionError);
  QuantumMemoryManager b(NodeId{2});
  b.add_link_pool(LinkId{1}, 1);
  EXPECT_THROW(b.set_shared_comm_pool(1), AssertionError);
}

TEST(MemoryManager, StoragePoolSeparateFromComm) {
  QuantumMemoryManager qmm(NodeId{1});
  qmm.set_shared_comm_pool(1);
  qmm.add_storage(2);
  EXPECT_EQ(qmm.free_storage_count(), 2u);
  const auto s1 = qmm.try_alloc_storage(TimePoint::origin());
  const auto s2 = qmm.try_alloc_storage(TimePoint::origin());
  ASSERT_TRUE(s1 && s2);
  EXPECT_FALSE(qmm.try_alloc_storage(TimePoint::origin()));
  // Comm pool untouched.
  EXPECT_EQ(qmm.free_comm_count(LinkId{1}), 1u);
  // Freeing a storage qubit returns it to the storage pool.
  qmm.free(*s1);
  EXPECT_EQ(qmm.free_storage_count(), 1u);
  EXPECT_EQ(qmm.slot(*s2).kind, QubitKind::storage);
}

TEST(MemoryManager, SlotMetadata) {
  QuantumMemoryManager qmm(NodeId{7});
  qmm.add_link_pool(LinkId{3}, 1);
  const auto a = qmm.try_alloc_comm(LinkId{3}, TimePoint::origin() + 5_ms);
  ASSERT_TRUE(a);
  const QubitSlot& slot = qmm.slot(*a);
  EXPECT_EQ(slot.kind, QubitKind::communication);
  EXPECT_EQ(slot.pool_link, LinkId{3});
  EXPECT_TRUE(slot.in_use);
  EXPECT_EQ(slot.allocated_at, TimePoint::origin() + 5_ms);
  EXPECT_TRUE(qmm.is_allocated(*a));
  qmm.free(*a);
  EXPECT_FALSE(qmm.is_allocated(*a));
}

}  // namespace
}  // namespace qnetp::qdevice
