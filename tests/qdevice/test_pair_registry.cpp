#include "qdevice/pair_registry.hpp"

#include <gtest/gtest.h>

namespace qnetp::qdevice {
namespace {

using qstate::BellIndex;
using qstate::TwoQubitState;

PairPtr make_pair(std::uint64_t id) {
  return std::make_shared<EntangledPair>(
      PairId{id}, TwoQubitState::bell(BellIndex::phi_plus()),
      BellIndex::phi_plus(),
      EntangledPair::Side{NodeId{1}, QubitId{10}, qstate::MemoryDecay{}},
      EntangledPair::Side{NodeId{2}, QubitId{20}, qstate::MemoryDecay{}},
      TimePoint::origin());
}

TEST(PairRegistry, BindFindUnbind) {
  PairRegistry reg;
  const QubitEndpoint ep{NodeId{1}, QubitId{10}};
  EXPECT_FALSE(reg.find(ep).has_value());
  auto pair = make_pair(1);
  reg.bind(ep, pair, 0);
  const auto binding = reg.find(ep);
  ASSERT_TRUE(binding);
  EXPECT_EQ(binding->pair->id(), PairId{1});
  EXPECT_EQ(binding->side, 0);
  reg.unbind(ep);
  EXPECT_FALSE(reg.find(ep).has_value());
  EXPECT_TRUE(reg.empty());
}

TEST(PairRegistry, RebindReplaces) {
  PairRegistry reg;
  const QubitEndpoint ep{NodeId{1}, QubitId{10}};
  reg.bind(ep, make_pair(1), 0);
  reg.bind(ep, make_pair(2), 1);
  const auto binding = reg.find(ep);
  ASSERT_TRUE(binding);
  EXPECT_EQ(binding->pair->id(), PairId{2});
  EXPECT_EQ(binding->side, 1);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(PairRegistry, DistinctEndpointsIndependent) {
  PairRegistry reg;
  reg.bind(QubitEndpoint{NodeId{1}, QubitId{10}}, make_pair(1), 0);
  reg.bind(QubitEndpoint{NodeId{2}, QubitId{10}}, make_pair(2), 1);
  reg.bind(QubitEndpoint{NodeId{1}, QubitId{11}}, make_pair(3), 0);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.find(QubitEndpoint{NodeId{2}, QubitId{10}})->pair->id(),
            PairId{2});
}

TEST(PairRegistry, ForEachAtNodeFilters) {
  PairRegistry reg;
  reg.bind(QubitEndpoint{NodeId{1}, QubitId{10}}, make_pair(1), 0);
  reg.bind(QubitEndpoint{NodeId{1}, QubitId{11}}, make_pair(2), 0);
  reg.bind(QubitEndpoint{NodeId{2}, QubitId{20}}, make_pair(3), 1);
  int count = 0;
  reg.for_each_at_node(NodeId{1},
                       [&](const QubitEndpoint& ep,
                           const PairRegistry::Binding&) {
                         EXPECT_EQ(ep.node, NodeId{1});
                         ++count;
                       });
  EXPECT_EQ(count, 2);
}

TEST(PairRegistry, InvalidBindAsserts) {
  PairRegistry reg;
  EXPECT_THROW(reg.bind(QubitEndpoint{NodeId{1}, QubitId{1}}, nullptr, 0),
               AssertionError);
  EXPECT_THROW(reg.bind(QubitEndpoint{NodeId{1}, QubitId{1}}, make_pair(1), 2),
               AssertionError);
}

TEST(PairRegistry, UnbindMissingIsNoop) {
  PairRegistry reg;
  reg.unbind(QubitEndpoint{NodeId{9}, QubitId{9}});
  EXPECT_TRUE(reg.empty());
}

}  // namespace
}  // namespace qnetp::qdevice
