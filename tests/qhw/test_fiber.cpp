#include "qhw/fiber.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::qhw {
namespace {

TEST(Fiber, LabPresetTransmissionNearUnity) {
  const FiberParams f = FiberParams::lab(2.0);
  // 2 m at 5 dB/km = 0.01 dB.
  EXPECT_NEAR(f.transmission(), std::pow(10.0, -0.01 / 10.0), 1e-12);
  EXPECT_GT(f.transmission(), 0.99);
}

TEST(Fiber, TelecomPresetAttenuation) {
  const FiberParams f = FiberParams::telecom(25000.0);
  // 25 km at 0.5 dB/km = 12.5 dB.
  EXPECT_NEAR(f.transmission(), std::pow(10.0, -12.5 / 10.0), 1e-12);
  // Half length (to midpoint): 6.25 dB.
  EXPECT_NEAR(f.transmission(0.5), std::pow(10.0, -6.25 / 10.0), 1e-12);
}

TEST(Fiber, PropagationDelay) {
  const FiberParams f = FiberParams::telecom(25000.0);
  EXPECT_NEAR(f.propagation_delay().as_us(), 125.0, 1e-6);
  EXPECT_NEAR(f.propagation_delay(0.5).as_us(), 62.5, 1e-6);
  const FiberParams lab = FiberParams::lab(2.0);
  EXPECT_NEAR(lab.propagation_delay().as_ns(), 10.0, 1e-6);
}

TEST(Fiber, TransmissionMonotoneInLength) {
  double prev = 1.0;
  for (double len : {10.0, 100.0, 1000.0, 10000.0, 50000.0}) {
    const double t = FiberParams::telecom(len).transmission();
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Fiber, ValidationRejectsNonPositiveLength) {
  FiberParams f{0.0, 5.0};
  EXPECT_THROW(f.validate(), AssertionError);
  FiberParams g{100.0, -1.0};
  EXPECT_THROW(g.validate(), AssertionError);
}

TEST(Fiber, FractionBoundsChecked) {
  const FiberParams f = FiberParams::lab(2.0);
  EXPECT_THROW(f.transmission(1.5), AssertionError);
  EXPECT_THROW(f.propagation_delay(-0.1), AssertionError);
}

}  // namespace
}  // namespace qnetp::qhw
