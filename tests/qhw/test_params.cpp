#include "qhw/params.hpp"

#include <gtest/gtest.h>

namespace qnetp::qhw {
namespace {

using namespace qnetp::literals;

TEST(Presets, SimulationMatchesTable1) {
  const HardwareParams hw = simulation_preset();
  EXPECT_EQ(hw.name, "simulation");
  EXPECT_DOUBLE_EQ(hw.gates.electron_single_qubit.fidelity, 1.0);
  EXPECT_EQ(hw.gates.electron_single_qubit.duration, 5_ns);
  EXPECT_DOUBLE_EQ(hw.gates.two_qubit.fidelity, 0.998);
  EXPECT_EQ(hw.gates.two_qubit.duration, 500_us);
  EXPECT_DOUBLE_EQ(hw.gates.electron_init.fidelity, 0.99);
  EXPECT_EQ(hw.gates.electron_init.duration, 2_us);
  EXPECT_DOUBLE_EQ(hw.gates.electron_readout_0.fidelity, 0.998);
  EXPECT_EQ(hw.gates.electron_readout_0.duration, 3.7_us);
  EXPECT_FALSE(hw.single_communication_qubit);
}

TEST(Presets, SimulationMatchesTable2) {
  const HardwareParams hw = simulation_preset();
  EXPECT_EQ(hw.phys.electron_t2, 60_s);
  EXPECT_EQ(hw.phys.tau_w, 25_ns);
  EXPECT_EQ(hw.phys.tau_e, 6.0_ns);
  EXPECT_DOUBLE_EQ(hw.phys.delta_phi_deg, 2.0);
  EXPECT_DOUBLE_EQ(hw.phys.p_double_excitation, 0.0);
  EXPECT_DOUBLE_EQ(hw.phys.p_zero_phonon, 0.75);
  EXPECT_DOUBLE_EQ(hw.phys.collection_efficiency, 20.0e-3);
  EXPECT_DOUBLE_EQ(hw.phys.dark_count_rate_hz, 20.0);
  EXPECT_DOUBLE_EQ(hw.phys.p_detection, 0.8);
  EXPECT_DOUBLE_EQ(hw.phys.visibility, 1.0);
}

TEST(Presets, NearTermMatchesTables) {
  const HardwareParams hw = near_term_preset();
  EXPECT_EQ(hw.name, "near-term");
  EXPECT_TRUE(hw.single_communication_qubit);
  EXPECT_DOUBLE_EQ(hw.gates.two_qubit.fidelity, 0.992);
  EXPECT_DOUBLE_EQ(hw.gates.carbon_init.fidelity, 0.95);
  EXPECT_EQ(hw.gates.carbon_init.duration, 300_us);
  EXPECT_DOUBLE_EQ(hw.gates.electron_readout_0.fidelity, 0.95);
  EXPECT_DOUBLE_EQ(hw.gates.electron_readout_1.fidelity, 0.995);
  EXPECT_EQ(hw.phys.electron_t2, 1.46_s);
  EXPECT_EQ(hw.phys.carbon_t2, 60_s);
  EXPECT_EQ(hw.phys.tau_e, 6.48_ns);
  EXPECT_DOUBLE_EQ(hw.phys.delta_phi_deg, 10.6);
  EXPECT_DOUBLE_EQ(hw.phys.p_double_excitation, 0.04);
  EXPECT_DOUBLE_EQ(hw.phys.p_zero_phonon, 0.46);
  EXPECT_DOUBLE_EQ(hw.phys.collection_efficiency, 4.38e-3);
  EXPECT_DOUBLE_EQ(hw.phys.visibility, 0.9);
}

TEST(Derived, DepolarizingFromFidelity) {
  EXPECT_DOUBLE_EQ(HardwareParams::depolarizing_from_fidelity(1.0), 0.0);
  EXPECT_NEAR(HardwareParams::depolarizing_from_fidelity(0.998),
              0.002 * 4.0 / 3.0, 1e-12);
  // Floors at 1.
  EXPECT_DOUBLE_EQ(HardwareParams::depolarizing_from_fidelity(0.25), 1.0);
}

TEST(Derived, SwapNoiseAndDuration) {
  const HardwareParams hw = simulation_preset();
  const auto noise = hw.swap_noise();
  EXPECT_NEAR(noise.gate_depolarizing, 0.002 * 4.0 / 3.0 / 2.0, 1e-12);
  EXPECT_NEAR(noise.readout_flip_prob, 0.002, 1e-12);
  EXPECT_EQ(hw.swap_duration(), 500_us + 3.7_us + 3.7_us);
}

TEST(Derived, ReadoutFlipAveragesAsymmetricErrors) {
  const HardwareParams hw = near_term_preset();
  EXPECT_NEAR(hw.readout_flip_prob(), (0.05 + 0.005) / 2.0, 1e-12);
}

TEST(Derived, MemoryModels) {
  const HardwareParams hw = near_term_preset();
  EXPECT_EQ(hw.electron_memory().t2, 1.46_s);
  EXPECT_EQ(hw.carbon_memory().t2, 60_s);
  // Simulation preset has no carbon decay.
  EXPECT_EQ(simulation_preset().carbon_memory().t2, Duration::max());
}

TEST(Derived, NuclearDephasingPerAttempt) {
  const HardwareParams sim = simulation_preset();
  EXPECT_DOUBLE_EQ(sim.nuclear_dephasing_lambda_per_attempt(), 0.0);
  const HardwareParams nt = near_term_preset();
  const double lambda = nt.nuclear_dephasing_lambda_per_attempt();
  EXPECT_GT(lambda, 0.0);
  EXPECT_LT(lambda, 0.01);  // decoupling keeps the per-attempt hit small
}

TEST(Derived, MoveCosts) {
  const HardwareParams hw = near_term_preset();
  EXPECT_EQ(hw.move_duration(), 300_us + 500_us);
  EXPECT_GT(hw.move_depolarizing(), 0.0);
}

TEST(Validation, RejectsBadParameters) {
  HardwareParams hw = simulation_preset();
  hw.phys.p_detection = 1.5;
  EXPECT_THROW(hw.validate(), AssertionError);
  HardwareParams hw2 = simulation_preset();
  hw2.gates.two_qubit.fidelity = -0.1;
  EXPECT_THROW(hw2.validate(), AssertionError);
}

}  // namespace
}  // namespace qnetp::qhw
