#include "qhw/photonic_link.hpp"

#include <gtest/gtest.h>

#include "qbase/stats.hpp"

namespace qnetp::qhw {
namespace {

using namespace qnetp::literals;

PhotonicLinkModel lab_link() {
  return PhotonicLinkModel(simulation_preset(), FiberParams::lab(2.0));
}

TEST(PhotonicLink, EtaComposition) {
  const PhotonicLinkModel link = lab_link();
  const HardwareParams hw = simulation_preset();
  const FiberParams f = FiberParams::lab(2.0);
  const double expected = hw.phys.p_zero_phonon *
                          hw.phys.collection_efficiency *
                          f.transmission(0.5) * hw.phys.p_detection;
  EXPECT_NEAR(link.eta(), expected, 1e-12);
  EXPECT_NEAR(link.eta(), 0.012, 1e-4);
}

TEST(PhotonicLink, FidelityDecreasesBeyondOptimum) {
  const PhotonicLinkModel link = lab_link();
  double prev = link.max_fidelity();
  for (double a : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    ASSERT_GT(a, link.optimal_alpha());
    const double f = link.fidelity(a);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(PhotonicLink, DarkCountsDepressFidelityAtTinyAlpha) {
  // Physically: at vanishing bright-state population almost every herald
  // is a dark count, so the fidelity optimum sits at alpha > min_alpha.
  const PhotonicLinkModel link = lab_link();
  EXPECT_GT(link.optimal_alpha(), PhotonicLinkModel::min_alpha);
  EXPECT_LT(link.fidelity(PhotonicLinkModel::min_alpha),
            link.max_fidelity());
  EXPECT_GE(link.max_fidelity(),
            link.fidelity(link.optimal_alpha() * 2.0));
}

TEST(PhotonicLink, SuccessProbIncreasesWithAlpha) {
  const PhotonicLinkModel link = lab_link();
  double prev = 0.0;
  for (double a : {0.001, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    const double p = link.success_prob(a);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PhotonicLink, ProducedStateIsPhysical) {
  const PhotonicLinkModel link = lab_link();
  for (double a : {0.001, 0.05, 0.3, 0.5}) {
    const auto state = link.produced_state(a);
    EXPECT_TRUE(state.valid_density(1e-7)) << "alpha=" << a;
    EXPECT_NEAR(state.rho().trace().real(), 1.0, 1e-9);
  }
}

TEST(PhotonicLink, AnnouncedBellIsBestGuess) {
  const PhotonicLinkModel link = lab_link();
  const auto state = link.produced_state(0.05);
  const auto [best, f] = state.best_bell();
  EXPECT_EQ(best, link.announced_bell());
  EXPECT_GT(f, 0.9);
}

TEST(PhotonicLink, SolveAlphaMeetsRequestedFidelity) {
  const PhotonicLinkModel link = lab_link();
  for (double f_min : {0.8, 0.9, 0.95, 0.98}) {
    double alpha = 0.0;
    ASSERT_TRUE(link.solve_alpha(f_min, &alpha)) << f_min;
    EXPECT_GE(link.fidelity(alpha), f_min - 1e-9);
    // The solution is tight: 1% more alpha would violate (unless clamped
    // at max_alpha).
    if (alpha < PhotonicLinkModel::max_alpha - 1e-9) {
      EXPECT_LT(link.fidelity(alpha * 1.05), f_min + 2e-3);
    }
  }
}

TEST(PhotonicLink, SolveAlphaFailsAboveMaxFidelity) {
  const PhotonicLinkModel link = lab_link();
  double alpha = 0.0;
  EXPECT_FALSE(link.solve_alpha(0.99999, &alpha));
  EXPECT_TRUE(link.solve_alpha(link.max_fidelity() - 1e-6, &alpha));
}

TEST(PhotonicLink, Fig5CalibrationAnchor) {
  // The paper's Fig. 5: mean ~10 ms per F=0.95 pair over 2 m, 95% of pairs
  // within ~30 ms. Verify the model reproduces this within tolerance.
  const PhotonicLinkModel link = lab_link();
  double alpha = 0.0;
  ASSERT_TRUE(link.solve_alpha(0.95, &alpha));
  const double mean_ms = link.mean_generation_time(alpha).as_ms();
  EXPECT_GT(mean_ms, 6.0);
  EXPECT_LT(mean_ms, 14.0);
  const double p95_ms = link.generation_time_quantile(alpha, 0.95).as_ms();
  EXPECT_GT(p95_ms, 2.0 * mean_ms);
  EXPECT_LT(p95_ms, 3.5 * mean_ms);
  EXPECT_LT(p95_ms, 40.0);
}

TEST(PhotonicLink, SampleGenerationMatchesMean) {
  const PhotonicLinkModel link = lab_link();
  Rng rng(3);
  double alpha = 0.0;
  ASSERT_TRUE(link.solve_alpha(0.9, &alpha));
  RunningStats elapsed_ms;
  for (int i = 0; i < 4000; ++i) {
    const auto s = link.sample_generation(alpha, rng);
    EXPECT_GE(s.attempts, 1u);
    elapsed_ms.add(s.elapsed.as_ms());
  }
  const double expect_ms = link.mean_generation_time(alpha).as_ms();
  EXPECT_NEAR(elapsed_ms.mean(), expect_ms, expect_ms * 0.1);
}

TEST(PhotonicLink, QuantileInvertsGeometricCdf) {
  const PhotonicLinkModel link = lab_link();
  Rng rng(5);
  double alpha = 0.0;
  ASSERT_TRUE(link.solve_alpha(0.95, &alpha));
  const Duration q85 = link.generation_time_quantile(alpha, 0.85);
  int within = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (link.sample_generation(alpha, rng).elapsed <= q85) ++within;
  }
  EXPECT_NEAR(static_cast<double>(within) / n, 0.85, 0.03);
}

TEST(PhotonicLink, NearTermLinkIsMuchSlowerAndNoisier) {
  const PhotonicLinkModel lab = lab_link();
  const PhotonicLinkModel nt(near_term_preset(),
                             FiberParams::telecom(25000.0));
  EXPECT_LT(nt.eta(), lab.eta() / 10.0);
  EXPECT_LT(nt.max_fidelity(), lab.max_fidelity());
  EXPECT_GT(nt.max_fidelity(), 0.8);  // still usable for F=0.5 end-to-end
  // Attempt cycle dominated by 12.5 km midpoint round trip (125 us).
  EXPECT_GT(nt.attempt_cycle().as_us(), 125.0);
  double alpha = 0.0;
  ASSERT_TRUE(nt.solve_alpha(0.75, &alpha));
  EXPECT_GT(nt.mean_generation_time(alpha).as_ms(), 100.0);
}

TEST(PhotonicLink, DoubleClickSchemeFixedFidelity) {
  const PhotonicLinkModel dc(simulation_preset(), FiberParams::lab(2.0),
                             HeraldScheme::double_click);
  // Fidelity independent of alpha.
  EXPECT_NEAR(dc.fidelity(0.0), dc.fidelity(0.4), 1e-12);
  // Success quadratic in eta: much rarer than single click.
  const PhotonicLinkModel sc = lab_link();
  EXPECT_LT(dc.success_prob(0.1), sc.success_prob(0.1));
  double alpha = 1.0;
  EXPECT_TRUE(dc.solve_alpha(0.9, &alpha));
  EXPECT_DOUBLE_EQ(alpha, 0.0);
}

TEST(PhotonicLink, DarkCountsPolluteLongLinks) {
  // At 25 km the signal is weak enough that dark counts contribute a
  // visible fraction of heralds.
  const PhotonicLinkModel nt(near_term_preset(),
                             FiberParams::telecom(25000.0));
  EXPECT_GT(nt.dark_fraction(0.05), 0.0);
  const PhotonicLinkModel lab = lab_link();
  EXPECT_LT(lab.dark_fraction(0.05), nt.dark_fraction(0.05));
}

TEST(PhotonicLink, AttemptCycleComposition) {
  const PhotonicLinkModel link = lab_link();
  const HardwareParams hw = simulation_preset();
  const Duration expected = hw.gates.electron_init.duration +
                            hw.phys.tau_e +
                            FiberParams::lab(2.0).propagation_delay(0.5) * 2.0 +
                            hw.phys.attempt_overhead;
  EXPECT_EQ(link.attempt_cycle(), expected);
  EXPECT_NEAR(link.attempt_cycle().as_us(), 11.9, 0.2);
}

}  // namespace
}  // namespace qnetp::qhw
