#include "qnp/demux.hpp"

#include <gtest/gtest.h>

#include "qbase/assert.hpp"

namespace qnetp::qnp {
namespace {

TEST(Demux, EmptyHasNoRequests) {
  Demultiplexer d;
  EXPECT_FALSE(d.next_request().has_value());
  EXPECT_EQ(d.active_count(), 0u);
}

TEST(Demux, FifoServesOldestUntilQuotaExhausted) {
  Demultiplexer d(DemuxPolicy::fifo);
  d.add_request(RequestId{1}, 2);
  d.add_request(RequestId{2}, 2);
  EXPECT_EQ(d.next_request(), RequestId{1});
  EXPECT_EQ(d.next_request(), RequestId{1});
  EXPECT_EQ(d.next_request(), RequestId{2});
  EXPECT_EQ(d.next_request(), RequestId{2});
}

TEST(Demux, FifoOverAssignsToOldestWhenAllExhausted) {
  Demultiplexer d(DemuxPolicy::fifo);
  d.add_request(RequestId{1}, 1);
  EXPECT_EQ(d.next_request(), RequestId{1});
  // Quota exhausted but the request is still active (pair in flight):
  // keep assigning so generation never stops.
  EXPECT_EQ(d.next_request(), RequestId{1});
}

TEST(Demux, RateBasedRequestsHaveUnlimitedQuota) {
  Demultiplexer d(DemuxPolicy::fifo);
  d.add_request(RequestId{1}, 0);  // rate-based
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.next_request(), RequestId{1});
}

TEST(Demux, UnassignReturnsQuota) {
  Demultiplexer d(DemuxPolicy::fifo);
  d.add_request(RequestId{1}, 1);
  d.add_request(RequestId{2}, 5);
  EXPECT_EQ(d.next_request(), RequestId{1});
  EXPECT_EQ(d.next_request(), RequestId{2});
  // The first pair expired: its slot reopens and FIFO goes back to 1.
  d.unassign(RequestId{1});
  EXPECT_EQ(d.next_request(), RequestId{1});
}

TEST(Demux, RoundRobinInterleaves) {
  Demultiplexer d(DemuxPolicy::round_robin);
  d.add_request(RequestId{1}, 0);
  d.add_request(RequestId{2}, 0);
  d.add_request(RequestId{3}, 0);
  EXPECT_EQ(d.next_request(), RequestId{1});
  EXPECT_EQ(d.next_request(), RequestId{2});
  EXPECT_EQ(d.next_request(), RequestId{3});
  EXPECT_EQ(d.next_request(), RequestId{1});
}

TEST(Demux, RoundRobinSurvivesRemoval) {
  Demultiplexer d(DemuxPolicy::round_robin);
  d.add_request(RequestId{1}, 0);
  d.add_request(RequestId{2}, 0);
  d.add_request(RequestId{3}, 0);
  EXPECT_EQ(d.next_request(), RequestId{1});
  d.remove_request(RequestId{2});
  EXPECT_EQ(d.next_request(), RequestId{3});
  EXPECT_EQ(d.next_request(), RequestId{1});
  EXPECT_EQ(d.next_request(), RequestId{3});
}

TEST(Demux, EpochAdvancesOnEveryMembershipChange) {
  Demultiplexer d;
  EXPECT_EQ(d.epoch(), 0u);
  EXPECT_EQ(d.add_request(RequestId{1}, 1), 1u);
  EXPECT_EQ(d.add_request(RequestId{2}, 1), 2u);
  EXPECT_EQ(d.remove_request(RequestId{1}), 3u);
  EXPECT_EQ(d.epoch(), 3u);
}

TEST(Demux, EpochsMirrorAcrossTwoEnds) {
  // The synchronisation property the protocol relies on: both ends apply
  // the same FORWARD/COMPLETE sequence and reach the same epoch.
  Demultiplexer head, tail;
  head.add_request(RequestId{1}, 5);
  tail.add_request(RequestId{1}, 5);
  head.add_request(RequestId{2}, 5);
  tail.add_request(RequestId{2}, 5);
  head.remove_request(RequestId{1});
  tail.remove_request(RequestId{1});
  EXPECT_EQ(head.epoch(), tail.epoch());
  // And the same assignment order.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(head.next_request(), tail.next_request());
  }
}

TEST(Demux, CrossCheck) {
  EXPECT_TRUE(Demultiplexer::cross_check(RequestId{1}, RequestId{1}));
  EXPECT_FALSE(Demultiplexer::cross_check(RequestId{1}, RequestId{2}));
}

TEST(Demux, DuplicateAddAsserts) {
  Demultiplexer d;
  d.add_request(RequestId{1}, 1);
  EXPECT_THROW(d.add_request(RequestId{1}, 1), AssertionError);
}

TEST(Demux, RemoveUnknownIsHarmless) {
  Demultiplexer d;
  d.add_request(RequestId{1}, 1);
  d.remove_request(RequestId{99});
  EXPECT_TRUE(d.has_request(RequestId{1}));
}

TEST(Demux, UnassignAfterCompletionIsHarmless) {
  Demultiplexer d;
  d.add_request(RequestId{1}, 1);
  d.remove_request(RequestId{1});
  d.unassign(RequestId{1});  // no crash, no effect
  EXPECT_FALSE(d.has_request(RequestId{1}));
}

}  // namespace
}  // namespace qnetp::qnp
