// Engine record-GC tests: wholesale flow-table expiry of stranded
// in-transit pairs, TTL-horizon survival, duplicate/late TRACKs after
// expiry, and occupancy/consistency accounting across churn.
//
// Scenario used throughout: cut the classical 2-3 link of a 3-node
// chain while a keep request is streaming. Whatever in-transit entries
// the tail holds at the cut can never be resolved by the protocol (the
// TRACKs and EXPIREs that would release them are dropped), so only the
// record TTL's wholesale expiry reclaims them.
#include <algorithm>

#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::qnp {
namespace {

using namespace qnetp::literals;
using netmsg::Message;
using netmsg::TrackMsg;

class EngineGc : public ::testing::Test {
 protected:
  EngineGc() {
    netsim::NetworkConfig config;
    config.seed = 5;
    net_ = netsim::make_chain(3, config, qhw::simulation_preset(),
                              qhw::FiberParams::lab(2.0));
    probe_ = std::make_unique<netsim::DualProbe>(
        *net_, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20});
    const auto plan = net_->establish_circuit(
        NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
    EXPECT_TRUE(plan.has_value());
    plan_ = *plan;
  }

  QnpEngine& head() { return net_->engine(NodeId{1}); }
  QnpEngine& mid() { return net_->engine(NodeId{2}); }
  QnpEngine& tail() { return net_->engine(NodeId{3}); }

  /// Stream a long keep request, then sever classical 2-3 mid-flight,
  /// stranding the tail's live in-transit entries. Returns the sim time
  /// of the cut.
  TimePoint stream_then_cut() {
    AppRequest r;
    r.id = RequestId{1};
    r.head_endpoint = EndpointId{10};
    r.tail_endpoint = EndpointId{20};
    r.type = netmsg::RequestType::keep;
    r.num_pairs = 200;  // stays active well past the cut
    EXPECT_TRUE(head().submit_request(plan_.install.circuit_id, r));
    net_->sim().run_until(net_->sim().now() + 150_ms);
    EXPECT_GT(tail().occupancy().live, 0u);  // pairs in flight at the cut
    net_->classical().set_link_up(NodeId{2}, NodeId{3}, false);
    return net_->sim().now();
  }

  /// The engine's record TTL for this circuit (see gc_records).
  Duration record_ttl() const {
    return std::max(plan_.cutoff * 8.0, Duration::seconds(1.0));
  }

  /// TRACKs arriving at the tail trigger gc_records before the end-node
  /// rule runs; an unknown correlator is then silently ignored, so this
  /// doubles as a benign GC trigger.
  void poke_tail_gc(std::uint64_t sequence) {
    TrackMsg track;
    track.circuit_id = plan_.install.circuit_id;
    track.request_id = RequestId{1};
    track.head_end_identifier = EndpointId{10};
    track.tail_end_identifier = EndpointId{20};
    // Link 2-3 is the second link of the chain.
    track.origin_correlator = PairCorrelator{LinkId{1}, sequence};
    track.link_correlator = PairCorrelator{LinkId{2}, sequence};
    tail().on_message(NodeId{2}, Message{track});
  }

  std::unique_ptr<netsim::Network> net_;
  std::unique_ptr<netsim::DualProbe> probe_;
  ctrl::CircuitPlan plan_;
};

TEST_F(EngineGc, StrandedPairsSurviveUntilTheTtlHorizon) {
  const TimePoint cut = stream_then_cut();
  const std::uint64_t live_at_cut = tail().occupancy().live;
  const std::uint64_t base = tail().counters().pairs_discarded_unassigned;

  // Entries live at the cut were stamped at most cutoff+slack ago (older
  // ones were resolved by the still-healthy protocol). Just short of
  // stamp+TTL the GC floor lies before all of them: none may expire.
  net_->sim().run_until(cut + record_ttl() - plan_.cutoff -
                        Duration::seconds(0.5));
  poke_tail_gc(999999);
  EXPECT_EQ(tail().counters().pairs_discarded_unassigned, base);
  EXPECT_GE(tail().occupancy().live, live_at_cut);

  // Past cut+TTL every stranded entry is a full TTL overdue: wholesale
  // expiry reclaims all of them (plus any straggler that landed right
  // after the cut) at once.
  net_->sim().run_until(cut + record_ttl() + Duration::seconds(0.5));
  poke_tail_gc(999999);
  EXPECT_GE(tail().counters().pairs_discarded_unassigned,
            base + live_at_cut);
  EXPECT_EQ(tail().occupancy().live, 0u);
  EXPECT_GE(tail().occupancy().expired_wholesale, live_at_cut);
  EXPECT_EQ(tail().consistency_check(), "");
  net_->sim().stop();
}

TEST_F(EngineGc, LateTracksAfterWholesaleExpiryAreIgnored) {
  const TimePoint cut = stream_then_cut();
  const std::uint64_t live_at_cut = tail().occupancy().live;
  const std::uint64_t base = tail().counters().pairs_discarded_unassigned;
  net_->sim().run_until(cut + record_ttl() + Duration::seconds(0.5));

  // Replay TRACKs for the first thirty 2-3 link pairs: every correlator
  // was either delivered long ago or just wholesale-expired (the first
  // poke's gc pass reclaims the stranded entries). All must be ignored
  // without crashing, and none may deliver.
  const std::uint64_t delivered = tail().counters().pairs_delivered;
  for (std::uint64_t seq = 1; seq <= 30; ++seq) poke_tail_gc(seq);
  EXPECT_GE(tail().counters().pairs_discarded_unassigned,
            base + live_at_cut);
  EXPECT_EQ(tail().counters().pairs_delivered, delivered);
  EXPECT_EQ(tail().counters().cross_check_failures, 0u);
  EXPECT_EQ(tail().occupancy().live, 0u);
  EXPECT_EQ(tail().consistency_check(), "");
  net_->sim().stop();
}

TEST_F(EngineGc, OccupancyCountersStayConsistentAcrossChurn) {
  AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.type = netmsg::RequestType::keep;
  r.num_pairs = 6;
  ASSERT_TRUE(head().submit_request(plan_.install.circuit_id, r));
  net_->sim().run_until(net_->sim().now() + 30_s);
  ASSERT_EQ(probe_->pair_count(), 6u);

  for (QnpEngine* e : {&head(), &mid(), &tail()}) {
    EXPECT_EQ(e->consistency_check(), "");
    const EngineOccupancy occ = e->occupancy();
    EXPECT_GE(occ.peak, occ.live);
  }
  // The mid node saw real record churn: its peak must reflect it.
  EXPECT_GT(mid().occupancy().peak, 0u);

  // Teardown retires the circuit's tables; live occupancy drops to zero
  // while the wholesale-expiry total survives the circuit's erasure.
  const std::uint64_t expired_before = mid().occupancy().expired_wholesale;
  head().teardown(plan_.install.circuit_id, "gc occupancy test");
  net_->sim().run_until(net_->sim().now() + 100_ms);
  for (QnpEngine* e : {&head(), &mid(), &tail()}) {
    EXPECT_EQ(e->occupancy().live, 0u);
    EXPECT_EQ(e->consistency_check(), "");
  }
  EXPECT_EQ(mid().occupancy().expired_wholesale, expired_before);
  net_->sim().stop();
}

}  // namespace
}  // namespace qnetp::qnp
