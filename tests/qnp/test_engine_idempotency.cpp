// Engine idempotency under channel-injected duplication: replayed
// INSTALL / FORWARD / COMPLETE / UPDATE / TEARDOWN / EXPIRE messages
// must not double-apply, double-notify, or resurrect retired request
// state (a FORWARD replayed after its COMPLETE re-registering the
// request at the tail would capture later link pairs and deliver them
// with no head-side counterpart — the chaos-battery leak).
#include <gtest/gtest.h>

#include "netsim/network.hpp"

namespace qnetp::qnp {
namespace {

using namespace qnetp::literals;
using netmsg::CompleteMsg;
using netmsg::ExpireMsg;
using netmsg::ForwardMsg;
using netmsg::Message;
using netmsg::TeardownMsg;
using netmsg::UpdateMsg;

class EngineIdempotency : public ::testing::Test {
 protected:
  EngineIdempotency() {
    netsim::NetworkConfig config;
    config.seed = 7;
    net_ = netsim::make_chain(3, config, qhw::simulation_preset(),
                              qhw::FiberParams::lab(2.0));
    const auto plan = net_->establish_circuit(
        NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
    EXPECT_TRUE(plan.has_value());
    plan_ = *plan;
    EndpointHandlers tail_handlers;
    tail_handlers.on_complete = [this](CircuitId, RequestId) {
      ++tail_completes_;
    };
    tail().register_endpoint(EndpointId{20}, std::move(tail_handlers));
  }

  QnpEngine& head() { return net_->engine(NodeId{1}); }
  QnpEngine& mid() { return net_->engine(NodeId{2}); }
  QnpEngine& tail() { return net_->engine(NodeId{3}); }
  CircuitId circuit() const { return plan_.install.circuit_id; }

  void run_for(Duration d) {
    auto& sim = net_->sharded_sim();
    sim.run_until(sim.now() + d);
  }

  ForwardMsg forward(std::uint64_t request) const {
    ForwardMsg m;
    m.circuit_id = circuit();
    m.request_id = RequestId{request};
    m.head_end_identifier = EndpointId{10};
    m.tail_end_identifier = EndpointId{20};
    m.request_type = netmsg::RequestType::keep;
    m.number_of_pairs = 1;
    m.rate = 1.0;
    return m;
  }
  CompleteMsg complete(std::uint64_t request) const {
    CompleteMsg m;
    m.circuit_id = circuit();
    m.request_id = RequestId{request};
    m.head_end_identifier = EndpointId{10};
    m.tail_end_identifier = EndpointId{20};
    m.rate = 0.0;
    return m;
  }

  std::unique_ptr<netsim::Network> net_;
  ctrl::CircuitPlan plan_;
  std::size_t tail_completes_ = 0;
};

TEST_F(EngineIdempotency, DuplicateInstallIsReDrivenNotFatal) {
  // A duplicated INSTALL must not re-install (or assert); the relay and
  // tail-ack still re-drive so a chain stalled by a lost copy completes.
  ASSERT_TRUE(mid().has_circuit(circuit()));
  mid().on_message(NodeId{1}, Message{plan_.install});
  run_for(10_ms);
  EXPECT_TRUE(mid().has_circuit(circuit()));
  EXPECT_TRUE(tail().has_circuit(circuit()));
  tail().on_message(NodeId{2}, Message{plan_.install});
  run_for(10_ms);
  EXPECT_TRUE(tail().has_circuit(circuit()));
  EXPECT_TRUE(head().consistency_check().empty());
}

TEST_F(EngineIdempotency, DuplicateCompleteNotifiesTheAppOnce) {
  tail().on_message(NodeId{2}, Message{forward(77)});
  tail().on_message(NodeId{2}, Message{complete(77)});
  EXPECT_EQ(tail_completes_, 1u);
  tail().on_message(NodeId{2}, Message{complete(77)});
  EXPECT_EQ(tail_completes_, 1u);
}

TEST_F(EngineIdempotency, CompleteWithoutForwardIsIgnored) {
  tail().on_message(NodeId{2}, Message{complete(78)});
  EXPECT_EQ(tail_completes_, 0u);
}

TEST_F(EngineIdempotency, ForwardReplayAfterCompleteDoesNotResurrect) {
  tail().on_message(NodeId{2}, Message{forward(79)});
  tail().on_message(NodeId{2}, Message{complete(79)});
  EXPECT_EQ(tail_completes_, 1u);
  // The replayed FORWARD must not re-register the request: a zombie
  // would capture later link pairs, and the replayed COMPLETE would
  // notify the application a second time.
  tail().on_message(NodeId{2}, Message{forward(79)});
  tail().on_message(NodeId{2}, Message{complete(79)});
  EXPECT_EQ(tail_completes_, 1u);
}

TEST_F(EngineIdempotency, DuplicateForwardAtRelayForwardsOnce) {
  mid().on_message(NodeId{1}, Message{forward(80)});
  mid().on_message(NodeId{1}, Message{forward(80)});
  run_for(10_ms);
  // Only one FORWARD reached the tail, so one COMPLETE notifies once.
  mid().on_message(NodeId{1}, Message{complete(80)});
  mid().on_message(NodeId{1}, Message{complete(80)});
  run_for(10_ms);
  EXPECT_EQ(tail_completes_, 1u);
}

TEST_F(EngineIdempotency, ReplayedUpdateAppliesOnce) {
  UpdateMsg update;
  update.circuit_id = circuit();
  update.version = 1000000;
  update.hops.push_back({NodeId{1}, 50.0, 5.0});
  update.hops.push_back({NodeId{2}, 50.0, 5.0});
  update.hops.push_back({NodeId{3}, 50.0, 5.0});
  const auto applied = [this] {
    return head().counters().updates_applied +
           mid().counters().updates_applied +
           tail().counters().updates_applied;
  };
  const std::uint64_t before = applied();
  head().on_message(NodeId{}, Message{update});
  run_for(10_ms);
  EXPECT_EQ(applied(), before + 3);
  // Exact replay: stale version everywhere, applied nowhere.
  head().on_message(NodeId{}, Message{update});
  run_for(10_ms);
  EXPECT_EQ(applied(), before + 3);
  // Older version: equally stale.
  update.version -= 1;
  head().on_message(NodeId{}, Message{update});
  run_for(10_ms);
  EXPECT_EQ(applied(), before + 3);
}

TEST_F(EngineIdempotency, DuplicateExpireIsCountedButHarmless) {
  ExpireMsg expire;
  expire.circuit_id = circuit();
  expire.origin_correlator = PairCorrelator{LinkId{1}, 424242};
  tail().on_message(NodeId{2}, Message{expire});
  tail().on_message(NodeId{2}, Message{expire});
  EXPECT_EQ(tail().counters().expires_received, 2u);
  EXPECT_TRUE(tail().has_circuit(circuit()));
}

TEST_F(EngineIdempotency, DuplicateTeardownIsIgnored) {
  TeardownMsg td;
  td.circuit_id = circuit();
  td.reason = "test";
  tail().on_message(NodeId{2}, Message{td});
  EXPECT_FALSE(tail().has_circuit(circuit()));
  tail().on_message(NodeId{2}, Message{td});
  EXPECT_FALSE(tail().has_circuit(circuit()));
}

}  // namespace
}  // namespace qnetp::qnp
