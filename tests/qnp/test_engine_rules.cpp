// Engine rule-level tests: malformed/unexpected messages, installation
// guards, unassigned-pair handling and counter bookkeeping. Uses a real
// 3-node network but injects synthetic messages directly into engines.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

namespace qnetp::qnp {
namespace {

using namespace qnetp::literals;
using netmsg::ExpireMsg;
using netmsg::ForwardMsg;
using netmsg::HopState;
using netmsg::InstallMsg;
using netmsg::Message;
using netmsg::TeardownMsg;
using netmsg::TrackMsg;

class EngineRules : public ::testing::Test {
 protected:
  EngineRules() {
    netsim::NetworkConfig config;
    config.seed = 5;
    net_ = netsim::make_chain(3, config, qhw::simulation_preset(),
                              qhw::FiberParams::lab(2.0));
    probe_ = std::make_unique<netsim::DualProbe>(
        *net_, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20});
    const auto plan = net_->establish_circuit(
        NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.85);
    EXPECT_TRUE(plan.has_value());
    plan_ = *plan;
  }

  QnpEngine& head() { return net_->engine(NodeId{1}); }
  QnpEngine& mid() { return net_->engine(NodeId{2}); }
  QnpEngine& tail() { return net_->engine(NodeId{3}); }

  std::unique_ptr<netsim::Network> net_;
  std::unique_ptr<netsim::DualProbe> probe_;
  ctrl::CircuitPlan plan_;
};

TEST_F(EngineRules, MessagesForUnknownCircuitsAreIgnored) {
  TrackMsg track;
  track.circuit_id = CircuitId{999};
  head().on_message(NodeId{2}, Message{track});
  ExpireMsg expire;
  expire.circuit_id = CircuitId{999};
  head().on_message(NodeId{2}, Message{expire});
  ForwardMsg fwd;
  fwd.circuit_id = CircuitId{999};
  mid().on_message(NodeId{1}, Message{fwd});
  TeardownMsg td;
  td.circuit_id = CircuitId{999};
  tail().on_message(NodeId{2}, Message{td});
  SUCCEED();  // no crash, no state change
}

TEST_F(EngineRules, TrackFromOutsideTheCircuitAsserts) {
  TrackMsg track;
  track.circuit_id = plan_.install.circuit_id;
  track.link_correlator = PairCorrelator{LinkId{1}, 1};
  // Node 9 is not this circuit's neighbour anywhere.
  EXPECT_THROW(mid().on_message(NodeId{9}, Message{track}), AssertionError);
}

TEST_F(EngineRules, ExpireForUnknownCorrelatorIsIgnored) {
  ExpireMsg expire;
  expire.circuit_id = plan_.install.circuit_id;
  expire.origin_correlator = PairCorrelator{LinkId{1}, 424242};
  head().on_message(NodeId{2}, Message{expire});
  EXPECT_EQ(head().counters().expires_received, 1u);
}

TEST_F(EngineRules, DuplicateInstallAsserts) {
  EXPECT_THROW(
      net_->node(NodeId{1}).engine().install_hop(plan_.install,
                                                 plan_.install.hops[0]),
      AssertionError);
}

TEST_F(EngineRules, InstallForWrongNodeAsserts) {
  InstallMsg install = plan_.install;
  install.circuit_id = CircuitId{777};
  // hops[1] describes node 2, not node 1.
  EXPECT_THROW(
      net_->node(NodeId{1}).engine().install_hop(install, install.hops[1]),
      AssertionError);
}

TEST_F(EngineRules, SubmitOnUnknownCircuitFails) {
  AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.num_pairs = 1;
  std::string reason;
  EXPECT_FALSE(head().submit_request(CircuitId{999}, r, &reason));
  EXPECT_EQ(reason, "no such circuit");
}

TEST_F(EngineRules, SubmitAtNonHeadAsserts) {
  AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.num_pairs = 1;
  EXPECT_THROW(tail().submit_request(plan_.install.circuit_id, r),
               AssertionError);
}

TEST_F(EngineRules, UnassignedPairsAreDiscardedAtBothEnds) {
  // Force link generation for the circuit without any active request:
  // submit the EGP request directly with the circuit's first link label.
  auto* egp = net_->egp(NodeId{1}, NodeId{2});
  ASSERT_NE(egp, nullptr);
  linklayer::LinkRequest req;
  req.label = plan_.install.hops[0].downstream_label;
  req.min_fidelity = plan_.link_fidelity;
  req.continuous = false;
  req.num_pairs = 3;
  egp->submit(req);
  net_->sim().run_until(net_->sim().now() + 5_s);

  EXPECT_EQ(head().counters().pairs_discarded_unassigned, 3u);
  EXPECT_EQ(probe_->pair_count(), 0u);
  // The null TRACKs released the partner qubits at the far side: nothing
  // leaks.
  net_->sim().run_until(net_->sim().now() + 1_s);
  EXPECT_TRUE(net_->quiescent());
  net_->sim().stop();
}

TEST_F(EngineRules, CountersTellAConsistentStory) {
  AppRequest r;
  r.id = RequestId{1};
  r.head_endpoint = EndpointId{10};
  r.tail_endpoint = EndpointId{20};
  r.type = netmsg::RequestType::keep;
  r.num_pairs = 6;
  ASSERT_TRUE(head().submit_request(plan_.install.circuit_id, r));
  net_->sim().run_until(net_->sim().now() + 30_s);
  ASSERT_EQ(probe_->pair_count(), 6u);

  const auto& h = head().counters();
  const auto& m = mid().counters();
  const auto& t = tail().counters();
  EXPECT_EQ(h.requests_accepted, 1u);
  EXPECT_EQ(h.requests_completed, 1u);
  EXPECT_EQ(h.pairs_delivered, 6u);
  EXPECT_EQ(t.pairs_delivered, 6u);
  // Every delivered pair took one swap at the middle node; discarded or
  // surplus pairs may add more.
  EXPECT_GE(m.swaps_completed, 6u);
  EXPECT_EQ(m.swaps_completed, m.swaps_started);
  // Both ends originated one TRACK per local link-pair.
  EXPECT_GE(h.tracks_originated, 6u);
  EXPECT_GE(t.tracks_originated, 6u);
  // The middle node forwarded TRACKs in both directions.
  EXPECT_GE(m.tracks_forwarded, 12u);
  EXPECT_EQ(h.cross_check_failures, 0u);
  net_->sim().stop();
}

TEST_F(EngineRules, HasCircuitAndTeardownLifecycle) {
  EXPECT_TRUE(head().has_circuit(plan_.install.circuit_id));
  EXPECT_TRUE(mid().has_circuit(plan_.install.circuit_id));
  EXPECT_TRUE(tail().has_circuit(plan_.install.circuit_id));
  head().teardown(plan_.install.circuit_id, "lifecycle test");
  net_->sim().run_until(net_->sim().now() + 100_ms);
  EXPECT_FALSE(head().has_circuit(plan_.install.circuit_id));
  EXPECT_FALSE(mid().has_circuit(plan_.install.circuit_id));
  EXPECT_FALSE(tail().has_circuit(plan_.install.circuit_id));
  // Tearing down again is a no-op.
  head().teardown(plan_.install.circuit_id, "again");
  net_->sim().stop();
}

TEST_F(EngineRules, FidelityEstimateAccessor) {
  EXPECT_EQ(head().fidelity_estimate(CircuitId{999}), nullptr);
  const auto* est = head().fidelity_estimate(plan_.install.circuit_id);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->rounds(), 0u);  // testing disabled by default
}

TEST_F(EngineRules, ReleaseUnknownAppQubitAsserts) {
  EXPECT_THROW(head().release_app_qubit(QubitId{123456}), AssertionError);
  EXPECT_THROW(head().measure_app_qubit(QubitId{123456}, qstate::Basis::z,
                                        [](int) {}),
               AssertionError);
}

}  // namespace
}  // namespace qnetp::qnp
