#include "qnp/fidelity_estimator.hpp"

#include <gtest/gtest.h>

#include "qbase/rng.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qnp {
namespace {

using qstate::Basis;
using qstate::BellIndex;
using qstate::TwoQubitState;

TEST(FidelityEstimator, CorrelationSignsMatchPhysics) {
  // Verify the sign table against the exact correlators.
  for (BellIndex b : qstate::all_bell_indices()) {
    const TwoQubitState s = TwoQubitState::bell(b);
    for (Basis basis : {Basis::z, Basis::x, Basis::y}) {
      const double c = s.correlator(basis);
      EXPECT_NEAR(c, FidelityEstimator::correlation_sign(b, basis), 1e-9)
          << b.to_string();
    }
  }
}

TEST(FidelityEstimator, PerfectPairsEstimateOne) {
  FidelityEstimator est;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const Basis basis =
        std::array<Basis, 3>{Basis::z, Basis::x, Basis::y}[i % 3];
    TwoQubitState s = TwoQubitState::bell(BellIndex::psi_plus());
    const auto [a, b] = s.measure_both(basis, basis, rng);
    est.record(BellIndex::psi_plus(), basis, a, b);
  }
  EXPECT_EQ(est.rounds(), 300u);
  EXPECT_NEAR(est.estimate(), 1.0, 1e-9);
}

TEST(FidelityEstimator, WernerPairsEstimateTheirFidelity) {
  FidelityEstimator est;
  Rng rng(7);
  const double f = 0.85;
  for (int i = 0; i < 6000; ++i) {
    const Basis basis =
        std::array<Basis, 3>{Basis::z, Basis::x, Basis::y}[i % 3];
    TwoQubitState s = TwoQubitState::werner(f, BellIndex::phi_plus());
    const auto [a, b] = s.measure_both(basis, basis, rng);
    est.record(BellIndex::phi_plus(), basis, a, b);
  }
  EXPECT_NEAR(est.estimate(), f, 0.02);
}

TEST(FidelityEstimator, PoolsAcrossDifferentTrackedStates) {
  // Pairs tracked as different Bell states can share one estimator thanks
  // to sign normalisation.
  FidelityEstimator est;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const Basis basis =
        std::array<Basis, 3>{Basis::z, Basis::x, Basis::y}[i % 3];
    const BellIndex tracked{static_cast<std::uint8_t>(i % 4)};
    TwoQubitState s = TwoQubitState::werner(0.9, tracked);
    const auto [a, b] = s.measure_both(basis, basis, rng);
    est.record(tracked, basis, a, b);
  }
  EXPECT_NEAR(est.estimate(), 0.9, 0.03);
}

TEST(FidelityEstimator, RequiresAllBases) {
  FidelityEstimator est;
  est.record(BellIndex::phi_plus(), Basis::z, 0, 0);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);  // x and y missing
  EXPECT_EQ(est.rounds(Basis::z), 1u);
  EXPECT_EQ(est.rounds(Basis::x), 0u);
  est.record(BellIndex::phi_plus(), Basis::x, 0, 0);
  est.record(BellIndex::phi_plus(), Basis::y, 0, 1);
  EXPECT_GT(est.estimate(), 0.0);
}

TEST(FidelityEstimator, JunkPairsEstimateQuarter) {
  FidelityEstimator est;
  Rng rng(13);
  for (int i = 0; i < 6000; ++i) {
    const Basis basis =
        std::array<Basis, 3>{Basis::z, Basis::x, Basis::y}[i % 3];
    TwoQubitState s = TwoQubitState::maximally_mixed();
    const auto [a, b] = s.measure_both(basis, basis, rng);
    est.record(BellIndex::phi_plus(), basis, a, b);
  }
  EXPECT_NEAR(est.estimate(), 0.25, 0.03);
}

TEST(FidelityEstimator, InvalidOutcomeAsserts) {
  FidelityEstimator est;
  EXPECT_THROW(est.record(BellIndex::phi_plus(), Basis::z, 2, 0),
               AssertionError);
}

}  // namespace
}  // namespace qnetp::qnp
