// FlowTable unit tests: wholesale-expiry slot semantics, lazy deletion
// of stale wheel references, and the occupancy accounting invariant
// inserted() == size() + erased() + expired_wholesale() under random
// operation sequences checked against a reference std::map mirror.
#include "qnp/flow_table.hpp"

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qbase/units.hpp"

namespace qnetp::qnp {
namespace {

PairCorrelator key(std::uint64_t n) {
  return PairCorrelator{LinkId{1 + (n % 7)}, n};
}

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::seconds(s);
}

TEST(FlowTable, BasicInsertFindErase) {
  FlowTable<int> table;
  EXPECT_TRUE(table.empty());
  table.put(key(1), at_s(0.0), 10);
  table.put(key(2), at_s(0.1), 20);
  ASSERT_NE(table.find(key(1)), nullptr);
  EXPECT_EQ(*table.find(key(1)), 10);
  EXPECT_TRUE(table.contains(key(2)));
  EXPECT_FALSE(table.contains(key(3)));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.erase(key(1)));
  EXPECT_FALSE(table.erase(key(1)));  // already gone
  EXPECT_EQ(table.find(key(1)), nullptr);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.inserted(), 2u);
  EXPECT_EQ(table.erased(), 1u);
  EXPECT_EQ(table.expired_wholesale(), 0u);
}

TEST(FlowTable, EntryCreatedExactlyAtTheHorizonSurvives) {
  // 125 ms slots: an entry stamped at t lives in slot [t_slot, t_slot +
  // 125ms) and is retired only once the whole slot lies at or below the
  // floor. An entry created exactly AT the floor therefore survives.
  FlowTable<int> table(Duration::ms(125));
  table.put(key(1), at_s(1.0), 1);
  EXPECT_EQ(table.expire_all(at_s(1.0)), 0u);
  EXPECT_TRUE(table.contains(key(1)));
  // Still inside the slot: survives any floor below the slot end.
  EXPECT_EQ(table.expire_all(at_s(1.124)), 0u);
  EXPECT_TRUE(table.contains(key(1)));
  // At the slot end the slot lies entirely below the floor: retired.
  EXPECT_EQ(table.expire_all(at_s(1.125)), 1u);
  EXPECT_FALSE(table.contains(key(1)));
  EXPECT_EQ(table.expired_wholesale(), 1u);
  EXPECT_EQ(table.inserted(), table.size() + table.erased() +
                                  table.expired_wholesale());
}

TEST(FlowTable, ExpiryRetiresOnlySlotsBelowTheFloor) {
  FlowTable<int> table(Duration::ms(125));
  table.put(key(1), at_s(0.0), 1);
  table.put(key(2), at_s(0.5), 2);
  table.put(key(3), at_s(2.0), 3);
  std::vector<std::uint64_t> expired;
  const std::size_t n = table.expire_all(
      at_s(1.0), 0,
      [&](const PairCorrelator& k, int&&) { expired.push_back(k.sequence); });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0], 1u);  // oldest slot first
  EXPECT_EQ(expired[1], 2u);
  EXPECT_TRUE(table.contains(key(3)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, OverwriteRestartsTheLifetime) {
  FlowTable<std::string> table(Duration::ms(125));
  table.put(key(9), at_s(0.0), "old");
  table.put(key(9), at_s(5.0), "new");
  // Overwrite replaces in place: no counter moves.
  EXPECT_EQ(table.inserted(), 1u);
  EXPECT_EQ(table.size(), 1u);
  // A floor past the original stamp hits only the stale wheel reference
  // (sequence mismatch) and must not retire the refreshed entry.
  EXPECT_EQ(table.expire_all(at_s(4.0)), 0u);
  ASSERT_NE(table.find(key(9)), nullptr);
  EXPECT_EQ(*table.find(key(9)), "new");
  ASSERT_NE(table.created(key(9)), nullptr);
  EXPECT_EQ(table.created(key(9))->count_ps(), at_s(5.0).count_ps());
  // Past the refreshed slot it finally goes.
  EXPECT_EQ(table.expire_all(at_s(6.0)), 1u);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTable, ErasedEntriesLeaveOnlyStaleWheelRefs) {
  FlowTable<int> table(Duration::ms(125));
  table.put(key(1), at_s(0.0), 1);
  table.put(key(2), at_s(0.0), 2);
  EXPECT_TRUE(table.erase(key(1)));
  // Wholesale expiry skips the stale ref: key(1) counts as erased, not
  // expired, and the invariant still balances.
  EXPECT_EQ(table.expire_all(at_s(10.0)), 1u);
  EXPECT_EQ(table.erased(), 1u);
  EXPECT_EQ(table.expired_wholesale(), 1u);
  EXPECT_EQ(table.inserted(), table.size() + table.erased() +
                                  table.expired_wholesale());
}

TEST(FlowTable, SeqCheckProtectsReinsertedKeyFromStaleExpiry) {
  // Duplication-shaped op sequence: a record is erased (its message was
  // resolved) and the SAME correlator re-enters the table later (a
  // duplicated delivery re-creating flow state). The first incarnation's
  // wheel reference must not retire the second: the per-record sequence
  // number distinguishes them.
  FlowTable<int> table(Duration::ms(125));
  table.put(key(9), at_s(0.0), 1);
  EXPECT_TRUE(table.erase(key(9)));
  table.put(key(9), at_s(5.0), 2);
  // Floor past the first incarnation's slot but not the second's: the
  // stale ref is skipped, the live re-insert survives.
  EXPECT_EQ(table.expire_all(at_s(1.0)), 0u);
  ASSERT_NE(table.find(key(9)), nullptr);
  EXPECT_EQ(*table.find(key(9)), 2);
  // A floor past both retires the live incarnation exactly once.
  EXPECT_EQ(table.expire_all(at_s(10.0)), 1u);
  EXPECT_EQ(table.find(key(9)), nullptr);
  EXPECT_EQ(table.erased(), 1u);
  EXPECT_EQ(table.expired_wholesale(), 1u);
  EXPECT_EQ(table.inserted(), table.size() + table.erased() +
                                  table.expired_wholesale());
}

TEST(FlowTable, OverwriteShedsTheOldWheelReference) {
  // An overwrite (duplicate put of a live key) re-stamps the entry: the
  // old slot's reference goes stale and only the newest stamp governs
  // expiry.
  FlowTable<int> table(Duration::ms(125));
  table.put(key(4), at_s(0.0), 1);
  table.put(key(4), at_s(5.0), 2);  // duplicate, later slot
  EXPECT_EQ(table.expire_all(at_s(1.0)), 0u);
  ASSERT_NE(table.find(key(4)), nullptr);
  EXPECT_EQ(*table.find(key(4)), 2);
  EXPECT_EQ(table.expire_all(at_s(10.0)), 1u);
  EXPECT_EQ(table.inserted(), table.size() + table.erased() +
                                  table.expired_wholesale());
}

TEST(FlowTable, MinLiveGateSkipsExpiry) {
  FlowTable<int> table(Duration::ms(125));
  for (std::uint64_t i = 0; i < 4; ++i) table.put(key(i), at_s(0.0), 0);
  EXPECT_EQ(table.expire_all(at_s(100.0), /*min_live=*/5), 0u);
  EXPECT_EQ(table.size(), 4u);
  // At or above the gate the expiry proceeds.
  EXPECT_EQ(table.expire_all(at_s(100.0), /*min_live=*/4), 4u);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTable, EraseIfAndClearCountAsErased) {
  FlowTable<int> table;
  for (std::uint64_t i = 0; i < 6; ++i) {
    table.put(key(i), at_s(0.01 * static_cast<double>(i)),
              static_cast<int>(i));
  }
  const std::size_t evens =
      table.erase_if([](const PairCorrelator&, int v) { return v % 2 == 0; });
  EXPECT_EQ(evens, 3u);
  EXPECT_EQ(table.erased(), 3u);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.erased(), 6u);
  EXPECT_EQ(table.inserted(), 6u);
  EXPECT_EQ(table.expired_wholesale(), 0u);
  // Cleared wheel: a later put restarts cleanly.
  table.put(key(100), at_s(50.0), 1);
  EXPECT_EQ(table.expire_all(at_s(49.0)), 0u);
  EXPECT_TRUE(table.contains(key(100)));
}

TEST(FlowTable, OnExpireMayReenterTheTable) {
  // on_expire runs after the entry left the table, so re-putting the
  // same key from inside the callback must be safe and survive.
  FlowTable<int> table(Duration::ms(125));
  table.put(key(1), at_s(0.0), 7);
  const std::size_t n = table.expire_all(
      at_s(10.0), 0, [&](const PairCorrelator& k, int&& dead) {
        table.put(k, at_s(10.0), dead + 1);
      });
  EXPECT_EQ(n, 1u);
  ASSERT_NE(table.find(key(1)), nullptr);
  EXPECT_EQ(*table.find(key(1)), 8);
  EXPECT_EQ(table.inserted(), 2u);
  EXPECT_EQ(table.expired_wholesale(), 1u);
  EXPECT_EQ(table.inserted(), table.size() + table.erased() +
                                  table.expired_wholesale());
}

TEST(FlowTable, PeakTracksHighWaterMark) {
  FlowTable<int> table;
  for (std::uint64_t i = 0; i < 10; ++i) table.put(key(i), at_s(0.0), 0);
  EXPECT_EQ(table.peak(), 10u);
  table.expire_all(at_s(100.0));
  EXPECT_EQ(table.peak(), 10u);  // peak never decays
  table.put(key(99), at_s(200.0), 0);
  EXPECT_EQ(table.peak(), 10u);
}

TEST(FlowTable, RandomOpsMatchReferenceMirror) {
  // Drive put/overwrite/erase/expire with a seeded random sequence and
  // mirror the expected contents in a std::map applying the documented
  // slot rule: an entry expires iff the slot containing its (latest)
  // stamp ends at or below the floor.
  const std::int64_t width_ps = Duration::ms(125).count_ps();
  FlowTable<std::uint64_t> table(Duration::ms(125));
  std::map<std::uint64_t, std::int64_t> mirror;  // key seq -> stamp ps
  std::mt19937_64 rng(20260808);
  std::int64_t now_ps = 0;
  std::uint64_t next_key = 0;
  std::vector<std::uint64_t> live_keys;

  for (int step = 0; step < 4000; ++step) {
    now_ps += static_cast<std::int64_t>(rng() % 50'000'000'000ull);  // ≤50ms
    const TimePoint now = TimePoint::origin() + Duration::ps(now_ps);
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {  // insert fresh
        const std::uint64_t k = next_key++;
        table.put(key(k), now, k);
        mirror[k] = now_ps;
        live_keys.push_back(k);
        break;
      }
      case 3: {  // overwrite a live key, restamping it
        if (live_keys.empty()) break;
        const std::uint64_t k = live_keys[rng() % live_keys.size()];
        if (mirror.count(k) == 0) break;
        table.put(key(k), now, k);
        mirror[k] = now_ps;
        break;
      }
      case 4: {  // erase (possibly already gone)
        if (live_keys.empty()) break;
        const std::uint64_t k = live_keys[rng() % live_keys.size()];
        EXPECT_EQ(table.erase(key(k)), mirror.erase(k) > 0);
        break;
      }
      default: {  // wholesale expiry one second back
        const std::int64_t floor_ps = now_ps - Duration::seconds(1).count_ps();
        if (floor_ps <= 0) break;
        const std::size_t n = table.expire_all(
            TimePoint::origin() + Duration::ps(floor_ps));
        std::size_t expect = 0;
        for (auto it = mirror.begin(); it != mirror.end();) {
          const std::int64_t slot = it->second / width_ps;
          if ((slot + 1) * width_ps <= floor_ps) {
            it = mirror.erase(it);
            ++expect;
          } else {
            ++it;
          }
        }
        EXPECT_EQ(n, expect);
        break;
      }
    }
    ASSERT_EQ(table.size(), mirror.size()) << "step " << step;
    ASSERT_EQ(table.inserted(), table.size() + table.erased() +
                                    table.expired_wholesale())
        << "step " << step;
  }
  // Full content check at the end: same keys, same stamps.
  for (const auto& [k, stamp_ps] : mirror) {
    ASSERT_TRUE(table.contains(key(k)));
    ASSERT_NE(table.created(key(k)), nullptr);
    EXPECT_EQ((*table.created(key(k)) - TimePoint::origin()).count_ps(),
              stamp_ps);
  }
  EXPECT_GT(table.expired_wholesale(), 0u);
  EXPECT_GT(table.erased(), 0u);
}

}  // namespace
}  // namespace qnetp::qnp
