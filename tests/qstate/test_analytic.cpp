#include "qstate/analytic.hpp"

#include <gtest/gtest.h>

#include "qstate/channels.hpp"
#include "qstate/swap.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

using namespace qnetp::literals;

TEST(Analytic, SwapFidelityEndpoints) {
  EXPECT_NEAR(werner_swap_fidelity(1.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(werner_swap_fidelity(1.0, 0.25), 0.25, 1e-12);
  // Two junk pairs stay junk.
  EXPECT_NEAR(werner_swap_fidelity(0.25, 0.25), 0.25, 1e-12);
}

TEST(Analytic, SwapFidelityMonotone) {
  double prev = 0.0;
  for (double f = 0.25; f <= 1.0; f += 0.05) {
    const double out = werner_swap_fidelity(f, 0.9);
    EXPECT_GE(out, prev);
    prev = out;
  }
}

TEST(Analytic, SwapNeverExceedsInputs) {
  for (double f1 = 0.25; f1 <= 1.0; f1 += 0.083) {
    for (double f2 = 0.25; f2 <= 1.0; f2 += 0.083) {
      EXPECT_LE(werner_swap_fidelity(f1, f2) - 1e-12,
                std::min(std::max(f1, 0.25), std::max(f2, 0.25)) +
                    (1.0 - std::min(f1, f2)));
      // Weaker but exact property: output <= max input for inputs >= 1/4.
      EXPECT_LE(werner_swap_fidelity(f1, f2), std::max(f1, f2) + 1e-12);
    }
  }
}

TEST(Analytic, DepolarizingMatchesChannel) {
  for (double f : {0.6, 0.8, 0.95}) {
    for (double p : {0.01, 0.1, 0.3}) {
      TwoQubitState s = TwoQubitState::werner(f, BellIndex::phi_plus());
      s.apply_channel(0, Channel::depolarizing(p));
      EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()),
                  werner_after_depolarizing(f, p), 1e-12);
    }
  }
}

TEST(Analytic, ReadoutErrorFormula) {
  // q = 0: unchanged; q = 0.5: announcement random over 4 states.
  EXPECT_NEAR(werner_after_readout_error(0.9, 0.0), 0.9, 1e-12);
  const double f = 0.9;
  const double scrambled = werner_after_readout_error(f, 0.5);
  // p_correct = 0.25 -> F' = 0.25*F + 0.75*(1-F)/3.
  EXPECT_NEAR(scrambled, 0.25 * f + 0.75 * (1 - f) / 3, 1e-12);
}

TEST(Analytic, DephasingMatchesChannelOnWerner) {
  const double f0 = 0.92;
  const Duration t2 = 2_s;
  for (Duration dt : {100_ms, 500_ms, 1_s, 3_s}) {
    TwoQubitState s = TwoQubitState::werner(f0, BellIndex::phi_plus());
    const MemoryDecay decay{Duration::max(), t2};
    s.apply_channel(0, decay.for_interval(dt));
    s.apply_channel(1, decay.for_interval(dt));
    EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()),
                werner_after_dephasing(f0, dt, t2, t2), 1e-9)
        << "dt=" << dt.to_string();
  }
}

TEST(Analytic, DephasingOneSidedOnly) {
  const double f0 = 0.9;
  TwoQubitState s = TwoQubitState::werner(f0, BellIndex::phi_plus());
  const MemoryDecay decay{Duration::max(), 1_s};
  s.apply_channel(0, decay.for_interval(1_s));
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()),
              werner_after_dephasing(f0, 1_s, 1_s, Duration::max()), 1e-9);
}

TEST(Analytic, TimeToFidelityInvertsDecay) {
  const double f0 = 0.95;
  const Duration t2 = 10_s;
  const double target = 0.9;
  const Duration t = dephasing_time_to_fidelity(f0, target, t2, t2);
  ASSERT_NE(t, Duration::max());
  EXPECT_NEAR(werner_after_dephasing(f0, t, t2, t2), target, 1e-9);
}

TEST(Analytic, TimeToFidelityUnreachable) {
  // Dephasing floors above 0.5 * (f0 + partner); asking below that floor
  // returns infinity.
  const double f0 = 0.9;
  EXPECT_EQ(dephasing_time_to_fidelity(f0, 0.4, 1_s, 1_s), Duration::max());
  // No decay at all -> never reaches target.
  EXPECT_EQ(dephasing_time_to_fidelity(f0, 0.8, Duration::max(),
                                       Duration::max()),
            Duration::max());
}

TEST(Analytic, CutoffAnchorLose1Point5Percent) {
  // The paper's cutoff: time for a link-pair to lose ~1.5% of its initial
  // fidelity. For F0=0.95 and T2=60s on both qubits this lands near 1 s.
  const double f0 = 0.95;
  const Duration t =
      dephasing_time_to_fidelity(f0, f0 * 0.985, 60_s, 60_s);
  ASSERT_NE(t, Duration::max());
  EXPECT_GT(t, 0.5_s);
  EXPECT_LT(t, 2_s);
}

}  // namespace
}  // namespace qnetp::qstate
