#include "qstate/bell.hpp"

#include <gtest/gtest.h>

namespace qnetp::qstate {
namespace {

TEST(BellIndex, CodesAndBits) {
  EXPECT_EQ(BellIndex::phi_plus().code(), 0);
  EXPECT_EQ(BellIndex::psi_plus().code(), 1);
  EXPECT_EQ(BellIndex::phi_minus().code(), 2);
  EXPECT_EQ(BellIndex::psi_minus().code(), 3);
  EXPECT_FALSE(BellIndex::phi_plus().x_bit());
  EXPECT_TRUE(BellIndex::psi_plus().x_bit());
  EXPECT_FALSE(BellIndex::psi_plus().z_bit());
  EXPECT_TRUE(BellIndex::phi_minus().z_bit());
  EXPECT_TRUE(BellIndex::psi_minus().x_bit());
  EXPECT_TRUE(BellIndex::psi_minus().z_bit());
}

TEST(BellIndex, XorComposition) {
  const BellIndex a = BellIndex::psi_plus();   // (x=1,z=0)
  const BellIndex b = BellIndex::phi_minus();  // (x=0,z=1)
  EXPECT_EQ((a ^ b), BellIndex::psi_minus());
  EXPECT_EQ((a ^ a), BellIndex::phi_plus());
  // XOR is associative and commutative over the group.
  for (BellIndex x : all_bell_indices())
    for (BellIndex y : all_bell_indices()) {
      EXPECT_EQ((x ^ y), (y ^ x));
      for (BellIndex z : all_bell_indices())
        EXPECT_EQ(((x ^ y) ^ z), (x ^ (y ^ z)));
    }
}

TEST(BellIndex, Names) {
  EXPECT_EQ(BellIndex::phi_plus().to_string(), "Phi+");
  EXPECT_EQ(BellIndex::psi_minus().to_string(), "Psi-");
}

TEST(BellVectors, OrthonormalBasis) {
  for (BellIndex a : all_bell_indices())
    for (BellIndex b : all_bell_indices()) {
      const Cplx d = bell_vector(a).dot(bell_vector(b));
      if (a == b) {
        EXPECT_NEAR(d.real(), 1.0, 1e-12);
        EXPECT_NEAR(d.imag(), 0.0, 1e-12);
      } else {
        EXPECT_NEAR(std::abs(d), 0.0, 1e-12);
      }
    }
}

TEST(BellVectors, PauliGenerationConvention) {
  // |B_xz> == (Z^z X^x (x) I) |Phi+> up to global phase. Verify via
  // projectors to ignore phase.
  for (BellIndex idx : all_bell_indices()) {
    const Mat2 p = pauli_for(idx);
    const Mat4 op = kron(p, pauli_i());
    const Vec4 phi = bell_vector(BellIndex::phi_plus());
    // transformed = op * phi
    Vec4 transformed;
    for (std::size_t i = 0; i < 4; ++i) {
      Cplx acc = 0;
      for (std::size_t j = 0; j < 4; ++j) acc += op(i, j) * phi[j];
      transformed[i] = acc;
    }
    EXPECT_TRUE(
        transformed.outer().approx_equal(bell_projector(idx), 1e-12))
        << "failed for " << idx.to_string();
  }
}

TEST(BellProjectors, SumToIdentity) {
  Mat4 sum = Mat4::zero();
  for (BellIndex b : all_bell_indices()) sum += bell_projector(b);
  EXPECT_TRUE(sum.approx_equal(Mat4::identity()));
}

TEST(Pauli, AlgebraRelations) {
  const Mat2 x = pauli_x();
  const Mat2 y = pauli_y();
  const Mat2 z = pauli_z();
  EXPECT_TRUE((x * x).approx_equal(Mat2::identity()));
  EXPECT_TRUE((y * y).approx_equal(Mat2::identity()));
  EXPECT_TRUE((z * z).approx_equal(Mat2::identity()));
  // XY = iZ
  EXPECT_TRUE((x * y).approx_equal(z * Cplx{0, 1}));
  // Anticommutation {X, Z} = 0
  EXPECT_TRUE((x * z + z * x).approx_equal(Mat2::zero()));
}

TEST(PauliCorrection, MapsBetweenBellFrames) {
  // For every (from, to): applying pauli_correction(from, to) on the left
  // qubit of |B_from> yields |B_to> up to global phase.
  for (BellIndex from : all_bell_indices()) {
    for (BellIndex to : all_bell_indices()) {
      const Mat2 c = pauli_correction(from, to);
      const Mat4 op = kron(c, pauli_i());
      const Mat4 rho = op * bell_projector(from) * op.adjoint();
      EXPECT_TRUE(rho.approx_equal(bell_projector(to), 1e-12))
          << "from=" << from.to_string() << " to=" << to.to_string();
    }
  }
}

}  // namespace
}  // namespace qnetp::qstate
