// Bell-diagonal closed forms vs the exact density-matrix algebra: every
// fast-path operation must agree with applying the corresponding channel
// to the materialised 4x4 state.
#include "qstate/bell_diag.hpp"

#include <gtest/gtest.h>

#include "qbase/assert.hpp"
#include "qbase/rng.hpp"
#include "qstate/channels.hpp"
#include "qstate/swap.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

BellDiag random_diag(Rng& rng) {
  BellDiag d;
  double total = 0.0;
  for (double& c : d.c) {
    c = rng.uniform();
    total += c;
  }
  for (double& c : d.c) c /= total;
  return d;
}

/// Exact-path twin of a Bell-diagonal mixture (forced onto the Mat4
/// representation through the density-matrix constructor).
TwoQubitState exact_twin(const BellDiag& d) {
  return TwoQubitState(TwoQubitState::bell_diagonal(d.c).rho());
}

void expect_same_mixture(const BellDiag& fast, const TwoQubitState& exact,
                         double tol = 1e-12) {
  for (BellIndex b : all_bell_indices()) {
    EXPECT_NEAR(fast.fidelity(b), exact.fidelity(b), tol)
        << "component " << b.to_string();
  }
}

TEST(BellDiag, ConstructorsMatchExactFidelities) {
  for (BellIndex b : all_bell_indices()) {
    expect_same_mixture(BellDiag::bell(b), exact_twin(BellDiag::bell(b)));
    const BellDiag w = BellDiag::werner(0.83, b);
    expect_same_mixture(w, exact_twin(w));
  }
  expect_same_mixture(BellDiag::maximally_mixed(),
                      exact_twin(BellDiag::maximally_mixed()));
}

TEST(BellDiag, PauliMixMatchesExactChannelOnEitherSide) {
  Rng rng(31001);
  for (int i = 0; i < 50; ++i) {
    const BellDiag d = random_diag(rng);
    double probs[4];
    double total = 0.0;
    for (double& p : probs) {
      p = rng.uniform();
      total += p;
    }
    for (double& p : probs) p /= total;
    const Channel ch =
        Channel::pauli_channel(probs[0], probs[1], probs[2], probs[3]);
    for (int side : {0, 1}) {
      BellDiag fast = d;
      fast.apply_pauli_mix(ch.pauli_delta_probs());
      TwoQubitState exact = exact_twin(d);
      exact.apply_channel(side, ch);
      expect_same_mixture(fast, exact, 1e-9);
    }
  }
}

TEST(BellDiag, DephasingAndDepolarizingClosedForms) {
  Rng rng(31002);
  for (double p : {0.0, 0.05, 0.4, 0.9, 1.0}) {
    const BellDiag d = random_diag(rng);

    BellDiag deph = d;
    deph.apply_dephasing(p);
    TwoQubitState exact_deph = exact_twin(d);
    exact_deph.apply_channel(0, Channel::dephasing(p));
    expect_same_mixture(deph, exact_deph, 1e-9);

    BellDiag depol = d;
    depol.apply_depolarizing(p);
    TwoQubitState exact_depol = exact_twin(d);
    exact_depol.apply_channel(1, Channel::depolarizing(p));
    expect_same_mixture(depol, exact_depol, 1e-9);
  }
}

TEST(BellDiag, FrameShiftMatchesPauliCorrection) {
  Rng rng(31003);
  for (BellIndex from : all_bell_indices()) {
    for (BellIndex to : all_bell_indices()) {
      const BellDiag d = random_diag(rng);
      BellDiag fast = d;
      fast.apply_frame_shift(from ^ to);
      TwoQubitState exact = exact_twin(d);
      exact.apply_pauli(0, pauli_correction(from, to));
      expect_same_mixture(fast, exact, 1e-9);
    }
  }
}

TEST(BellDiag, SwapComposeMatchesExactContraction) {
  // For each fixed measurement outcome, the XOR-convolution must equal
  // the exact tensor contraction. Drive the exact path by re-drawing
  // until each outcome has been seen.
  Rng rng(31004);
  for (int i = 0; i < 40; ++i) {
    const BellDiag l = random_diag(rng);
    const BellDiag r = random_diag(rng);
    Rng sample_fast(9000 + i);
    Rng sample_exact(9000 + i);
    const SwapOutcome fast = entanglement_swap(
        TwoQubitState::bell_diagonal(l.c), TwoQubitState::bell_diagonal(r.c),
        SwapNoise::ideal(), sample_fast);
    const SwapOutcome exact = entanglement_swap(
        exact_twin(l), exact_twin(r), SwapNoise::ideal(), sample_exact);
    EXPECT_EQ(fast.true_outcome, exact.true_outcome) << "iteration " << i;
    EXPECT_NEAR(fast.probability, exact.probability, 1e-9);
    for (BellIndex b : all_bell_indices()) {
      EXPECT_NEAR(fast.state.fidelity(b), exact.state.fidelity(b), 1e-9)
          << "iteration " << i << " component " << b.to_string();
    }
  }
}

TEST(BellDiag, SwapComposeIsNormalisedForNormalisedInputs) {
  Rng rng(31005);
  for (int i = 0; i < 20; ++i) {
    const BellDiag l = random_diag(rng);
    const BellDiag r = random_diag(rng);
    for (BellIndex m : all_bell_indices()) {
      const BellDiag out = swap_compose(l, r, m);
      EXPECT_NEAR(out.sum(), 1.0, 1e-12);
    }
  }
}

TEST(BellDiag, NormalizeRejectsZeroMass) {
  BellDiag zero{};
  EXPECT_THROW(zero.normalize(), AssertionError);
}

}  // namespace
}  // namespace qnetp::qstate
