#include <gtest/gtest.h>

#include <cmath>

#include "qbase/stats.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

TEST(BlochAxis, ObservablesMatchPaulis) {
  EXPECT_TRUE(BlochAxis::pauli_z().observable().approx_equal(pauli_z()));
  EXPECT_TRUE(BlochAxis::pauli_x().observable().approx_equal(pauli_x()));
  EXPECT_TRUE(BlochAxis::pauli_y().observable().approx_equal(pauli_y()));
}

TEST(BlochAxis, NormalizationAndValidation) {
  const BlochAxis n = BlochAxis{3, 0, 4}.normalized();
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.z, 0.8, 1e-12);
  EXPECT_THROW((BlochAxis{0, 0, 0}.normalized()), AssertionError);
}

TEST(BlochAxis, ObservableProperties) {
  // (n.sigma)^2 = I and Tr(n.sigma) = 0 for any axis.
  for (const auto& axis :
       {BlochAxis{1, 2, 3}, BlochAxis{0.5, -0.2, 0.1}, BlochAxis{0, 1, 0}}) {
    const Mat2 obs = axis.observable();
    EXPECT_TRUE((obs * obs).approx_equal(Mat2::identity(), 1e-9));
    EXPECT_NEAR(std::abs(obs.trace()), 0.0, 1e-12);
  }
}

TEST(BlochAxis, ProjectorsSumToIdentityAndAreIdempotent) {
  const BlochAxis axis = BlochAxis::xz_plane(0.7);
  const Mat2 p0 = axis.projector(0);
  const Mat2 p1 = axis.projector(1);
  EXPECT_TRUE((p0 + p1).approx_equal(Mat2::identity(), 1e-12));
  EXPECT_TRUE((p0 * p0).approx_equal(p0, 1e-12));
  EXPECT_TRUE((p0 * p1).approx_equal(Mat2::zero(), 1e-12));
}

TEST(BlochAxis, XzPlaneInterpolates) {
  const BlochAxis z = BlochAxis::xz_plane(0.0);
  EXPECT_NEAR(z.z, 1.0, 1e-12);
  const BlochAxis x = BlochAxis::xz_plane(M_PI / 2.0);
  EXPECT_NEAR(x.x, 1.0, 1e-12);
  EXPECT_NEAR(x.z, 0.0, 1e-12);
}

TEST(CorrelatorAlong, MatchesPauliCorrelators) {
  const TwoQubitState s = TwoQubitState::bell(BellIndex::psi_minus());
  EXPECT_NEAR(s.correlator_along(BlochAxis::pauli_z(), BlochAxis::pauli_z()),
              s.correlator(Basis::z), 1e-12);
  EXPECT_NEAR(s.correlator_along(BlochAxis::pauli_x(), BlochAxis::pauli_x()),
              s.correlator(Basis::x), 1e-12);
}

TEST(CorrelatorAlong, SingletIsMinusCosine) {
  // The singlet Psi- has E(n, m) = -n.m.
  const TwoQubitState s = TwoQubitState::bell(BellIndex::psi_minus());
  for (double theta : {0.0, 0.3, 0.7, 1.2, M_PI / 2}) {
    const double e = s.correlator_along(BlochAxis::pauli_z(),
                                        BlochAxis::xz_plane(theta));
    EXPECT_NEAR(e, -std::cos(theta), 1e-9) << theta;
  }
}

TEST(Chsh, PhiPlusReachesTsirelson) {
  const TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  EXPECT_NEAR(s.chsh_value(), 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(Chsh, WernerFollowsClosedForm) {
  // S(F) = 2*sqrt2 * (4F-1)/3 for Werner states.
  for (double f : {0.5, 0.7, 0.78, 0.9, 1.0}) {
    const TwoQubitState s = TwoQubitState::werner(f, BellIndex::phi_plus());
    EXPECT_NEAR(s.chsh_value(), 2.0 * std::sqrt(2.0) * (4 * f - 1) / 3.0,
                1e-9)
        << f;
  }
}

TEST(Chsh, MixedStateDoesNotViolate) {
  EXPECT_NEAR(TwoQubitState::maximally_mixed().chsh_value(), 0.0, 1e-12);
  // The violation threshold for Werner states sits near F = 0.78.
  const TwoQubitState below =
      TwoQubitState::werner(0.75, BellIndex::phi_plus());
  EXPECT_LT(below.chsh_value(), 2.0);
  const TwoQubitState above =
      TwoQubitState::werner(0.82, BellIndex::phi_plus());
  EXPECT_GT(above.chsh_value(), 2.0);
}

TEST(MeasureAlong, SampledCorrelatorsMatchExpectation) {
  Rng rng(99);
  const BlochAxis a = BlochAxis::pauli_z();
  const BlochAxis b = BlochAxis::xz_plane(M_PI / 4.0);
  const double expected =
      TwoQubitState::bell(BellIndex::phi_plus()).correlator_along(a, b);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
    const auto [oa, ob] = s.measure_both_along(a, b, rng);
    sum += ((oa == 0) == (ob == 0)) ? 1.0 : -1.0;
  }
  EXPECT_NEAR(sum / n, expected, 0.02);
}

TEST(MeasureAlong, CollapseIsConsistent) {
  Rng rng(101);
  // Measuring twice along the same axes must repeat the outcomes.
  for (int i = 0; i < 50; ++i) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
    const BlochAxis axis = BlochAxis::xz_plane(0.9);
    const auto first = s.measure_both_along(axis, axis, rng);
    const auto second = s.measure_both_along(axis, axis, rng);
    EXPECT_EQ(first, second);
  }
}

}  // namespace
}  // namespace qnetp::qstate
