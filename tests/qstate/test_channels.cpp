#include "qstate/channels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qstate/bell.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

using namespace qnetp::literals;

// ---------------------------------------------------------------------------
// Parameterized CPTP property sweep: every factory channel at many
// parameter values must be trace preserving and keep density matrices
// valid when applied to either side of a Bell pair.
// ---------------------------------------------------------------------------

struct ChannelCase {
  std::string name;
  Channel channel;
};

class ChannelCptp : public ::testing::TestWithParam<double> {};

TEST_P(ChannelCptp, AllFactoriesTracePreservingAndPhysical) {
  const double p = GetParam();
  const std::vector<ChannelCase> cases = {
      {"dephasing", Channel::dephasing(p)},
      {"amplitude_damping", Channel::amplitude_damping(p)},
      {"depolarizing", Channel::depolarizing(p)},
      {"bit_flip", Channel::bit_flip(p)},
      {"pauli", Channel::pauli_channel(1.0 - p, p / 2, p / 4, p / 4)},
  };
  for (const auto& c : cases) {
    EXPECT_TRUE(c.channel.is_trace_preserving(1e-9)) << c.name << " p=" << p;
    for (int side : {0, 1}) {
      TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
      s.apply_channel(side, c.channel);
      EXPECT_TRUE(s.valid_density(1e-7))
          << c.name << " side " << side << " p=" << p;
      EXPECT_NEAR(s.rho().trace().real(), 1.0, 1e-9) << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ParamSweep, ChannelCptp,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0));

TEST(Channels, DephasingShrinksOffDiagonals) {
  const double lambda = 0.4;
  Mat2 rho{0.5, 0.5, 0.5, 0.5};  // |+><+|
  const Mat2 out = Channel::dephasing(lambda).apply(rho);
  EXPECT_NEAR(out(0, 1).real(), 0.5 * (1.0 - lambda), 1e-12);
  EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-12);  // populations untouched
}

TEST(Channels, FullDephasingKillsCoherence) {
  Mat2 rho{0.5, 0.5, 0.5, 0.5};
  const Mat2 out = Channel::dephasing(1.0).apply(rho);
  EXPECT_NEAR(std::abs(out(0, 1)), 0.0, 1e-12);
}

TEST(Channels, AmplitudeDampingMovesPopulationToGround) {
  Mat2 excited{0, 0, 0, 1};  // |1><1|
  const Mat2 out = Channel::amplitude_damping(0.3).apply(excited);
  EXPECT_NEAR(out(0, 0).real(), 0.3, 1e-12);
  EXPECT_NEAR(out(1, 1).real(), 0.7, 1e-12);
  // Full damping lands exactly in |0>.
  const Mat2 full = Channel::amplitude_damping(1.0).apply(excited);
  EXPECT_NEAR(full(0, 0).real(), 1.0, 1e-12);
}

TEST(Channels, DepolarizingMixesTowardIdentity) {
  Mat2 rho{1, 0, 0, 0};  // |0><0|
  const Mat2 out = Channel::depolarizing(1.0).apply(rho);
  EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(out(1, 1).real(), 0.5, 1e-12);
}

TEST(Channels, DepolarizingFidelityOnBellPair) {
  // One-sided depolarizing p on a perfect Bell pair: F = 1 - p/2... check
  // against the known formula F -> (1-p)*F + p/4 for F=1.
  const double p = 0.2;
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  s.apply_channel(0, Channel::depolarizing(p));
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), (1 - p) + p / 4.0, 1e-12);
}

TEST(Channels, BitFlipTogglesPopulations) {
  Mat2 rho{1, 0, 0, 0};
  const Mat2 out = Channel::bit_flip(1.0).apply(rho);
  EXPECT_NEAR(out(1, 1).real(), 1.0, 1e-12);
}

TEST(Channels, CompositionMatchesSequentialApplication) {
  const Channel a = Channel::dephasing(0.3);
  const Channel b = Channel::amplitude_damping(0.2);
  const Mat2 rho{0.6, Cplx{0.2, 0.1}, Cplx{0.2, -0.1}, 0.4};
  const Mat2 seq = b.apply(a.apply(rho));
  const Mat2 comp = b.after(a).apply(rho);
  EXPECT_TRUE(seq.approx_equal(comp, 1e-12));
}

TEST(Channels, UnitaryChannelConjugates) {
  const Channel ux = Channel::unitary(pauli_x());
  Mat2 rho{1, 0, 0, 0};
  const Mat2 out = ux.apply(rho);
  EXPECT_NEAR(out(1, 1).real(), 1.0, 1e-12);
  EXPECT_TRUE(ux.is_trace_preserving());
}

TEST(Channels, SideApplicationOnlyAffectsThatQubit) {
  // Dephasing the left qubit of Phi+ mixes Phi+ with Phi- but preserves
  // the reduced state of the right qubit.
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  s.apply_channel(0, Channel::dephasing(0.5));
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), 0.75, 1e-12);
  EXPECT_NEAR(s.fidelity(BellIndex::phi_minus()), 0.25, 1e-12);
  EXPECT_NEAR(s.fidelity(BellIndex::psi_plus()), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// MemoryDecay: time-based decoherence model.
// ---------------------------------------------------------------------------

TEST(MemoryDecay, NoDecayForInfiniteTimes) {
  const MemoryDecay decay;  // both infinite
  TwoQubitState s = TwoQubitState::bell(BellIndex::psi_plus());
  s.apply_channel(0, decay.for_interval(100_s));
  EXPECT_NEAR(s.fidelity(BellIndex::psi_plus()), 1.0, 1e-12);
}

TEST(MemoryDecay, ZeroIntervalIsIdentity) {
  const MemoryDecay decay{1_s, 1_s};
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  s.apply_channel(0, decay.for_interval(Duration::zero()));
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), 1.0, 1e-12);
}

TEST(MemoryDecay, PureDephasingDecaysCoherenceAtT2Rate) {
  const MemoryDecay decay{Duration::max(), 2_s};
  const Duration dt = 1_s;
  Mat2 plus{0.5, 0.5, 0.5, 0.5};
  const Mat2 out = decay.for_interval(dt).apply(plus);
  EXPECT_NEAR(out(0, 1).real(), 0.5 * std::exp(-0.5), 1e-9);
}

TEST(MemoryDecay, CombinedT1T2MatchesTargetCoherence) {
  // With T1 = 1s and T2 = 1s, off-diagonals must decay exactly as
  // exp(-dt/T2) even though amplitude damping contributes part of it.
  const MemoryDecay decay{1_s, 1_s};
  const Duration dt = 0.7_s;
  Mat2 plus{0.5, 0.5, 0.5, 0.5};
  const Mat2 out = decay.for_interval(dt).apply(plus);
  EXPECT_NEAR(std::abs(out(0, 1)), 0.5 * std::exp(-0.7), 1e-9);
}

TEST(MemoryDecay, T1RelaxesPopulations) {
  const MemoryDecay decay{1_s, 2_s};  // T2 = 2 T1: pure relaxation limit
  Mat2 excited{0, 0, 0, 1};
  const Mat2 out = decay.for_interval(1_s).apply(excited);
  EXPECT_NEAR(out(1, 1).real(), std::exp(-1.0), 1e-9);
}

TEST(MemoryDecay, FidelityMonotonicallyDecreasesTowardHalf) {
  const MemoryDecay decay{Duration::max(), 1_s};
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  double prev = 1.0;
  for (int i = 0; i < 8; ++i) {
    s.apply_channel(0, decay.for_interval(0.5_s));
    const double f = s.fidelity(BellIndex::phi_plus());
    EXPECT_LT(f, prev);
    EXPECT_GE(f, 0.5 - 1e-12);
    prev = f;
  }
  // Long-time limit for one-sided dephasing on Phi+: 0.5.
  s.apply_channel(0, decay.for_interval(100_s));
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), 0.5, 1e-6);
}

TEST(MemoryDecay, UnphysicalT2Asserts) {
  // T2 > 2*T1 cannot be realised by amplitude damping + dephasing.
  const MemoryDecay decay{1_s, 3_s};
  EXPECT_THROW(decay.for_interval(1_s), AssertionError);
}

TEST(MemoryDecay, CoherenceFactor) {
  const MemoryDecay decay{Duration::max(), 2_s};
  EXPECT_NEAR(decay.coherence_factor(2_s), std::exp(-1.0), 1e-12);
  const MemoryDecay none;
  EXPECT_DOUBLE_EQ(none.coherence_factor(100_s), 1.0);
}

}  // namespace
}  // namespace qnetp::qstate
