#include "qstate/complex_mat.hpp"

#include <gtest/gtest.h>

namespace qnetp::qstate {
namespace {

TEST(Mat2, IdentityAndZero) {
  const Mat2 i = Mat2::identity();
  EXPECT_EQ(i(0, 0), Cplx(1, 0));
  EXPECT_EQ(i(0, 1), Cplx(0, 0));
  EXPECT_EQ(i.trace(), Cplx(2, 0));
  EXPECT_EQ(Mat2::zero().trace(), Cplx(0, 0));
}

TEST(Mat2, Arithmetic) {
  const Mat2 a{1, 2, 3, 4};
  const Mat2 b{5, 6, 7, 8};
  const Mat2 sum = a + b;
  EXPECT_EQ(sum(0, 0), Cplx(6, 0));
  EXPECT_EQ(sum(1, 1), Cplx(12, 0));
  const Mat2 prod = a * b;
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
  EXPECT_EQ(prod(0, 0), Cplx(19, 0));
  EXPECT_EQ(prod(0, 1), Cplx(22, 0));
  EXPECT_EQ(prod(1, 0), Cplx(43, 0));
  EXPECT_EQ(prod(1, 1), Cplx(50, 0));
  const Mat2 scaled = a * Cplx{2, 0};
  EXPECT_EQ(scaled(1, 0), Cplx(6, 0));
}

TEST(Mat2, Adjoint) {
  const Mat2 a{Cplx{1, 1}, Cplx{2, -3}, Cplx{0, 5}, Cplx{4, 0}};
  const Mat2 ad = a.adjoint();
  EXPECT_EQ(ad(0, 0), Cplx(1, -1));
  EXPECT_EQ(ad(0, 1), Cplx(0, -5));
  EXPECT_EQ(ad(1, 0), Cplx(2, 3));
  EXPECT_EQ(ad(1, 1), Cplx(4, 0));
}

TEST(Mat4, IdentityTrace) {
  EXPECT_EQ(Mat4::identity().trace(), Cplx(4, 0));
}

TEST(Mat4, MatMulAgainstManual) {
  Mat4 a;
  Mat4 b;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = Cplx(static_cast<double>(i + 1), static_cast<double>(j));
      b(i, j) = Cplx(static_cast<double>(i == j ? 2 : 0), 0);
    }
  const Mat4 p = a * b;  // b = 2I, so p = 2a
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(p(i, j), a(i, j) * Cplx(2, 0));
}

TEST(Mat4, AdjointInvolution) {
  Mat4 a;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      a(i, j) = Cplx(static_cast<double>(i), static_cast<double>(j * j));
  EXPECT_TRUE(a.adjoint().adjoint().approx_equal(a));
}

TEST(Mat4, KronBasic) {
  const Mat2 x{0, 1, 1, 0};
  const Mat2 id = Mat2::identity();
  const Mat4 xi = kron(x, id);
  // (X (x) I)|00> = |10>: column 0 has a 1 in row 2.
  EXPECT_EQ(xi(2, 0), Cplx(1, 0));
  EXPECT_EQ(xi(0, 0), Cplx(0, 0));
  const Mat4 ix = kron(id, x);
  // (I (x) X)|00> = |01>: column 0 has a 1 in row 1.
  EXPECT_EQ(ix(1, 0), Cplx(1, 0));
}

TEST(Mat4, KronMixedProduct) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD)
  const Mat2 a{1, 2, 3, 4};
  const Mat2 b{0, 1, 1, 0};
  const Mat2 c{2, 0, 0, 2};
  const Mat2 d{1, 1, 0, 1};
  const Mat4 lhs = kron(a, b) * kron(c, d);
  const Mat4 rhs = kron(a * c, b * d);
  EXPECT_TRUE(lhs.approx_equal(rhs));
}

TEST(Vec4, NormalizationAndOuter) {
  Vec4 v{1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(v.norm2(), 2.0);
  const Vec4 n = v.normalized();
  EXPECT_NEAR(n.norm2(), 1.0, 1e-12);
  const Mat4 p = n.outer();
  EXPECT_NEAR(p.trace().real(), 1.0, 1e-12);
  // Projector is idempotent.
  EXPECT_TRUE((p * p).approx_equal(p));
}

TEST(Vec4, DotConjugatesLeft) {
  const Vec4 a{Cplx{0, 1}, 0, 0, 0};
  const Vec4 b{Cplx{0, 1}, 0, 0, 0};
  EXPECT_EQ(a.dot(b), Cplx(1, 0));
}

TEST(Mat4, DensityMatrixValidation) {
  // Maximally mixed state is a valid density matrix.
  const Mat4 mixed = Mat4::identity() * Cplx{0.25, 0};
  EXPECT_TRUE(mixed.is_density_matrix());

  // Trace != 1 is rejected.
  EXPECT_FALSE(Mat4::identity().is_density_matrix());

  // Non-Hermitian is rejected.
  Mat4 nh = mixed;
  nh(0, 1) = Cplx{0.1, 0};
  EXPECT_FALSE(nh.is_density_matrix());

  // Negative eigenvalue is rejected: diag(0.75, 0.5, 0, -0.25).
  Mat4 neg = Mat4::zero();
  neg(0, 0) = 0.75;
  neg(1, 1) = 0.5;
  neg(3, 3) = -0.25;
  EXPECT_FALSE(neg.is_density_matrix());
}

TEST(Mat4, ExpectationOfProjector) {
  const Vec4 psi = Vec4{1, 0, 0, 1}.normalized();
  const Mat4 rho = psi.outer();
  EXPECT_NEAR(expectation(rho, psi), 1.0, 1e-12);
  const Vec4 orth = Vec4{1, 0, 0, -1}.normalized();
  EXPECT_NEAR(expectation(rho, orth), 0.0, 1e-12);
}

TEST(Mat4, FrobeniusNorm) {
  EXPECT_DOUBLE_EQ(Mat4::identity().frobenius_norm(), 2.0);
}

}  // namespace
}  // namespace qnetp::qstate
