#include "qstate/distill.hpp"

#include <gtest/gtest.h>

namespace qnetp::qstate {
namespace {

TEST(BellDiagonal, ExtractAndReconstruct) {
  const BellDiagonal coeffs{0.7, 0.1, 0.15, 0.05};
  const TwoQubitState s = from_bell_diagonal(coeffs);
  const BellDiagonal back = bell_diagonal_of(s);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(back[i], coeffs[i], 1e-12);
  EXPECT_TRUE(s.valid_density());
}

TEST(BellDiagonal, WernerExtraction) {
  const TwoQubitState s = TwoQubitState::werner(0.85, BellIndex::phi_plus());
  const BellDiagonal d = bell_diagonal_of(s);
  EXPECT_NEAR(d[0], 0.85, 1e-12);
  EXPECT_NEAR(d[1], 0.05, 1e-12);
  EXPECT_NEAR(d[2], 0.05, 1e-12);
  EXPECT_NEAR(d[3], 0.05, 1e-12);
}

TEST(Dejmps, WernerRecurrenceKnownValue) {
  // For two identical Werner pairs with F = 0.7 the distilled fidelity is
  // (F^2 + ((1-F)/3)^2) / (F^2 + 2F(1-F)/3 + 5((1-F)/3)^2) ~= 0.7353.
  const BellDiagonal w{0.7, 0.1, 0.1, 0.1};
  BellDiagonal out{};
  const double p = dejmps_map(w, w, &out);
  EXPECT_NEAR(p, 0.68, 1e-12);
  EXPECT_NEAR(out[0], 0.5 / 0.68, 1e-12);
}

class DejmpsImproves : public ::testing::TestWithParam<double> {};

TEST_P(DejmpsImproves, FidelityIncreasesAboveHalf) {
  const double f = GetParam();
  const BellDiagonal w{f, (1 - f) / 3, (1 - f) / 3, (1 - f) / 3};
  BellDiagonal out{};
  dejmps_map(w, w, &out);
  EXPECT_GT(out[0], f) << "DEJMPS must improve fidelity for F > 0.5";
}

INSTANTIATE_TEST_SUITE_P(WernerSweep, DejmpsImproves,
                         ::testing::Values(0.55, 0.6, 0.7, 0.8, 0.9, 0.95));

TEST(Dejmps, OutputNormalised) {
  const BellDiagonal a{0.6, 0.2, 0.1, 0.1};
  const BellDiagonal b{0.8, 0.05, 0.1, 0.05};
  BellDiagonal out{};
  const double p = dejmps_map(a, b, &out);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
  double total = 0;
  for (double x : out) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Dejmps, PerfectPairsAlwaysSucceedPerfectly) {
  Rng rng(1);
  const auto r = dejmps(TwoQubitState::bell(BellIndex::phi_plus()),
                        TwoQubitState::bell(BellIndex::phi_plus()), 0.0, rng);
  EXPECT_TRUE(r.success);
  EXPECT_NEAR(r.success_probability, 1.0, 1e-12);
  EXPECT_NEAR(r.state.fidelity(BellIndex::phi_plus()), 1.0, 1e-9);
}

TEST(Dejmps, SuccessRateMatchesProbability) {
  Rng rng(2);
  const TwoQubitState w = TwoQubitState::werner(0.7, BellIndex::phi_plus());
  int succ = 0;
  const int n = 2000;
  double expected = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto r = dejmps(w, w, 0.0, rng);
    expected = r.success_probability;
    if (r.success) ++succ;
  }
  EXPECT_NEAR(static_cast<double>(succ) / n, expected, 0.03);
}

TEST(Dejmps, GateNoiseReducesOutputFidelity) {
  Rng rng(3);
  const TwoQubitState w = TwoQubitState::werner(0.9, BellIndex::phi_plus());
  // Find a successful noiseless round and a successful noisy round.
  double clean_f = 0, noisy_f = 0;
  for (int i = 0; i < 100 && clean_f == 0; ++i) {
    const auto r = dejmps(w, w, 0.0, rng);
    if (r.success) clean_f = r.state.fidelity(BellIndex::phi_plus());
  }
  for (int i = 0; i < 100 && noisy_f == 0; ++i) {
    const auto r = dejmps(w, w, 0.05, rng);
    if (r.success) noisy_f = r.state.fidelity(BellIndex::phi_plus());
  }
  ASSERT_GT(clean_f, 0.0);
  ASSERT_GT(noisy_f, 0.0);
  EXPECT_LT(noisy_f, clean_f);
}

TEST(Dejmps, BelowHalfInputsDoNotImprove) {
  // DEJMPS cannot create entanglement from separable states.
  const BellDiagonal junk{0.25, 0.25, 0.25, 0.25};
  BellDiagonal out{};
  dejmps_map(junk, junk, &out);
  EXPECT_NEAR(out[0], 0.25, 1e-12);
}

}  // namespace
}  // namespace qnetp::qstate
