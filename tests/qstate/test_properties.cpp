// Property-based seeded tests for the qstate layer: swap and distill
// must preserve the density-matrix invariants (unit trace, fidelity in
// [0,1]) across randomized input states, and DEJMPS success must deliver
// at least the closed-form (analytic) output fidelity. Randomized inputs
// come from seeded Rng streams, so failures reproduce exactly.
#include <gtest/gtest.h>

#include "qstate/distill.hpp"
#include "qstate/swap.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

/// A random Bell-diagonal state (the family produced by the link layer
/// and swaps): random normalized coefficients, optionally biased toward
/// a dominant Phi+ component so distillable inputs are common.
TwoQubitState random_bell_diagonal(Rng& rng, bool dominant_phi_plus) {
  BellDiagonal coeffs;
  double total = 0.0;
  for (double& c : coeffs) {
    c = rng.uniform();
    total += c;
  }
  for (double& c : coeffs) c /= total;
  if (dominant_phi_plus) {
    // Mix with a pure Phi+ so coeffs[0] lands in (0.5, 1).
    const double f = rng.uniform(0.55, 0.95);
    for (int i = 0; i < 4; ++i) {
      coeffs[i] = coeffs[i] * (1.0 - f);
    }
    coeffs[0] += f;
  }
  return from_bell_diagonal(coeffs);
}

/// A random Werner-like pair with a random dominant Bell index.
TwoQubitState random_werner(Rng& rng) {
  const BellIndex idx{static_cast<std::uint8_t>(rng.uniform_int(4))};
  return TwoQubitState::werner(rng.uniform(0.3, 1.0), idx);
}

TEST(SwapProperties, PreservesTraceAndFidelityRange) {
  Rng rng(20240001);
  for (int i = 0; i < 200; ++i) {
    const TwoQubitState left =
        (i % 2 == 0) ? random_bell_diagonal(rng, false) : random_werner(rng);
    const TwoQubitState right =
        (i % 3 == 0) ? random_bell_diagonal(rng, false) : random_werner(rng);
    SwapNoise noise;
    noise.gate_depolarizing = rng.uniform(0.0, 0.2);
    noise.readout_flip_prob = rng.uniform(0.0, 0.1);
    const SwapOutcome out = entanglement_swap(left, right, noise, rng);

    EXPECT_TRUE(out.state.valid_density())
        << "iteration " << i << ": post-swap state is not a density matrix";
    EXPECT_NEAR(out.state.rho().trace().real(), 1.0, 1e-7);
    EXPECT_NEAR(out.state.rho().trace().imag(), 0.0, 1e-9);
    EXPECT_GT(out.probability, 0.0);
    EXPECT_LE(out.probability, 1.0 + 1e-12);
    for (int b = 0; b < 4; ++b) {
      const double f = out.state.fidelity(BellIndex{static_cast<std::uint8_t>(b)});
      EXPECT_GE(f, -1e-9) << "iteration " << i;
      EXPECT_LE(f, 1.0 + 1e-9) << "iteration " << i;
    }
  }
}

TEST(SwapProperties, IdealSwapOfPerfectPairsIsPerfect) {
  Rng rng(20240002);
  for (int i = 0; i < 50; ++i) {
    const SwapOutcome out = entanglement_swap(
        TwoQubitState::bell(BellIndex::phi_plus()),
        TwoQubitState::bell(BellIndex::phi_plus()), SwapNoise::ideal(), rng);
    // After correcting for the announced outcome, the outer pair is a
    // perfect Bell pair.
    EXPECT_NEAR(out.state.fidelity(out.true_outcome), 1.0, 1e-9);
    EXPECT_EQ(out.announced_outcome, out.true_outcome);  // no readout noise
  }
}

TEST(DistillProperties, PreservesTraceAndFidelityRange) {
  Rng rng(20240003);
  for (int i = 0; i < 200; ++i) {
    const TwoQubitState a = random_bell_diagonal(rng, i % 2 == 0);
    const TwoQubitState b = random_bell_diagonal(rng, i % 2 == 0);
    const double gate_noise = (i % 4 == 0) ? rng.uniform(0.0, 0.1) : 0.0;
    const DistillResult r = dejmps(a, b, gate_noise, rng);

    EXPECT_GE(r.success_probability, 0.0) << "iteration " << i;
    EXPECT_LE(r.success_probability, 1.0 + 1e-12) << "iteration " << i;
    if (!r.success) continue;
    EXPECT_TRUE(r.state.valid_density())
        << "iteration " << i << ": distilled state is not a density matrix";
    EXPECT_NEAR(r.state.rho().trace().real(), 1.0, 1e-7);
    for (int bell = 0; bell < 4; ++bell) {
      const double f = r.state.fidelity(BellIndex{static_cast<std::uint8_t>(bell)});
      EXPECT_GE(f, -1e-9) << "iteration " << i;
      EXPECT_LE(f, 1.0 + 1e-9) << "iteration " << i;
    }
  }
}

TEST(DistillProperties, SuccessMeetsAnalyticBound) {
  // With noiseless gates, the surviving pair of a successful DEJMPS round
  // must realise exactly the closed-form output map on the twirled
  // inputs — in particular its Phi+ fidelity may not fall below the
  // analytic value.
  Rng rng(20240004);
  for (int i = 0; i < 200; ++i) {
    const TwoQubitState a = random_bell_diagonal(rng, true);
    const TwoQubitState b = random_bell_diagonal(rng, true);
    BellDiagonal analytic{};
    dejmps_map(bell_diagonal_of(a), bell_diagonal_of(b), &analytic);
    const DistillResult r = dejmps(a, b, /*gate_depolarizing=*/0.0, rng);
    if (!r.success) continue;
    const double achieved = r.state.fidelity(BellIndex::phi_plus());
    EXPECT_GE(achieved, analytic[0] - 1e-9)
        << "iteration " << i
        << ": successful distillation fell below the analytic bound";
  }
}

TEST(DistillProperties, ImprovesDistillableWernerPairs) {
  // For identical Werner inputs above F = 0.5 the round must not reduce
  // fidelity (the recurrence is strictly improving there).
  Rng rng(20240005);
  for (int i = 0; i < 100; ++i) {
    const double f = rng.uniform(0.55, 0.95);
    const TwoQubitState w =
        TwoQubitState::werner(f, BellIndex::phi_plus());
    const DistillResult r = dejmps(w, w, 0.0, rng);
    if (!r.success) continue;
    EXPECT_GE(r.state.fidelity(BellIndex::phi_plus()), f - 1e-9)
        << "F=" << f;
  }
}

}  // namespace
}  // namespace qnetp::qstate
