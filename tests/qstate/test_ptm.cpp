// The Pauli-transfer-matrix superoperators must reproduce the naive
// kron-expanded Kraus application exactly (they replace it on the hot
// path), for every factory channel and for random states.
#include "qstate/ptm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qbase/rng.hpp"
#include "qstate/bell.hpp"
#include "qstate/channels.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

using namespace qnetp::literals;

/// Reference implementation: per-Kraus kron expansion (the pre-PTM path).
Mat4 naive_apply_to_side(const Mat4& rho, std::span<const Mat2> kraus,
                         int side) {
  Mat4 out = Mat4::zero();
  const Mat2 id = Mat2::identity();
  for (const auto& k : kraus) {
    const Mat4 big = (side == 0) ? kron(k, id) : kron(id, k);
    out += big * rho * big.adjoint();
  }
  return out;
}

Mat2 naive_apply(const Mat2& rho, std::span<const Mat2> kraus) {
  Mat2 out = Mat2::zero();
  for (const auto& k : kraus) out = out + k * rho * k.adjoint();
  return out;
}

/// A random two-qubit density matrix: rho = A A^dag / Tr.
Mat4 random_density(Rng& rng) {
  Mat4 a;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      a(i, j) = Cplx{rng.normal(), rng.normal()};
  Mat4 rho = a * a.adjoint();
  const double tr = rho.trace().real();
  return rho * Cplx{1.0 / tr, 0};
}

std::vector<Channel> factory_channels(double p) {
  return {
      Channel::identity(),
      Channel::dephasing(p),
      Channel::amplitude_damping(p),
      Channel::depolarizing(p),
      Channel::bit_flip(p),
      Channel::pauli_channel(1.0 - p, p / 2, p / 3, p / 6),
      Channel::unitary(pauli_y()),
      // Non-Pauli unitary: a rotation mixing all Pauli axes.
      Channel::unitary(Mat2{Cplx{std::cos(0.3), 0},
                            Cplx{-std::sin(0.3) * 0.6, -std::sin(0.3) * 0.8},
                            Cplx{std::sin(0.3) * 0.6, -std::sin(0.3) * 0.8},
                            Cplx{std::cos(0.3), 0}}),
  };
}

TEST(Ptm, MatchesNaiveKrausOnBothSides) {
  Rng rng(77001);
  for (double p : {0.0, 0.05, 0.3, 0.8, 1.0}) {
    for (const Channel& ch : factory_channels(p)) {
      for (int side : {0, 1}) {
        for (int i = 0; i < 10; ++i) {
          const Mat4 rho = random_density(rng);
          const Mat4 expect = naive_apply_to_side(rho, ch.kraus(), side);
          const Mat4 got = ch.apply_to_side(rho, side);
          EXPECT_TRUE(got.approx_equal(expect, 1e-12))
              << "p=" << p << " side=" << side;
        }
      }
    }
  }
}

TEST(Ptm, SingleQubitApplyMatchesNaive) {
  Rng rng(77002);
  for (double p : {0.1, 0.6}) {
    for (const Channel& ch : factory_channels(p)) {
      Mat2 sigma{Cplx{rng.uniform(), 0}, Cplx{rng.normal(), rng.normal()},
                 Cplx{rng.normal(), rng.normal()}, Cplx{rng.uniform(), 0}};
      // Hermitize so it is a (subnormalised) physical operator.
      sigma = (sigma + sigma.adjoint()) * Cplx{0.5, 0};
      const Mat2 expect = naive_apply(sigma, ch.kraus());
      const Mat2 got = ch.apply(sigma);
      EXPECT_TRUE(got.approx_equal(expect, 1e-12)) << "p=" << p;
    }
  }
}

TEST(Ptm, DecayClosedFormMatchesKrausComposition) {
  // Ptm4::decay(gamma, lambda) must equal the PTM of the amplitude-damping
  // + dephasing Kraus composition MemoryDecay builds.
  const MemoryDecay decay{2_s, 1.5_s};
  for (Duration dt : {Duration::ms(1), Duration::ms(400), Duration::seconds(3)}) {
    const DecayParams params = decay.params_for(dt);
    const Channel ch = decay.for_interval(dt);
    const Ptm4 closed = Ptm4::decay(params.gamma, params.lambda);
    EXPECT_TRUE(closed.approx_equal(ch.ptm(), 1e-12)) << dt.to_string();
  }
}

TEST(Ptm, DephasingClosedForm) {
  const double lambda = 0.37;
  EXPECT_TRUE(Ptm4::dephasing(lambda).approx_equal(
      Channel::dephasing(lambda).ptm(), 1e-12));
}

TEST(Ptm, CompositionMatchesSequentialApplication) {
  Rng rng(77003);
  const Ptm4 a = Channel::dephasing(0.3).ptm();
  const Ptm4 b = Channel::amplitude_damping(0.2).ptm();
  const Ptm4 ba = b * a;
  for (int i = 0; i < 5; ++i) {
    Mat4 rho = random_density(rng);
    Mat4 seq = rho;
    apply_ptm_to_side(seq, a, 0);
    apply_ptm_to_side(seq, b, 0);
    Mat4 comp = rho;
    apply_ptm_to_side(comp, ba, 0);
    EXPECT_TRUE(comp.approx_equal(seq, 1e-12));
  }
}

TEST(Channels, InlineKrausCapacityAndMetadata) {
  // The T1+T2 composition fills the inline capacity exactly.
  const MemoryDecay decay{1_s, 1_s};
  const Channel full = decay.for_interval(0.5_s);
  EXPECT_EQ(full.kraus().size(), Channel::kMaxKraus);
  EXPECT_TRUE(full.is_trace_preserving(1e-9));

  // Factory Pauli mixtures carry their Bell-delta probabilities.
  EXPECT_TRUE(Channel::dephasing(0.4).is_pauli_mix());
  EXPECT_TRUE(Channel::depolarizing(0.4).is_pauli_mix());
  EXPECT_TRUE(Channel::bit_flip(0.4).is_pauli_mix());
  EXPECT_TRUE(Channel::identity().is_pauli_mix());
  EXPECT_FALSE(Channel::amplitude_damping(0.4).is_pauli_mix());
  const auto q = Channel::pauli_channel(0.7, 0.1, 0.15, 0.05)
                     .pauli_delta_probs();
  EXPECT_DOUBLE_EQ(q[0], 0.7);   // I
  EXPECT_DOUBLE_EQ(q[1], 0.1);   // X flips the Bell x-bit
  EXPECT_DOUBLE_EQ(q[2], 0.05);  // Z flips the z-bit
  EXPECT_DOUBLE_EQ(q[3], 0.15);  // Y flips both

  // Pauli-mix composition XOR-convolves the delta probabilities.
  const Channel composed =
      Channel::bit_flip(0.2).after(Channel::dephasing(0.6));
  ASSERT_TRUE(composed.is_pauli_mix());
  const auto qc = composed.pauli_delta_probs();
  // bit_flip: {0.8 I, 0.2 X}; dephasing(0.6): {0.7 I, 0.3 Z}.
  EXPECT_NEAR(qc[0], 0.8 * 0.7, 1e-12);
  EXPECT_NEAR(qc[1], 0.2 * 0.7, 1e-12);
  EXPECT_NEAR(qc[2], 0.8 * 0.3, 1e-12);
  EXPECT_NEAR(qc[3], 0.2 * 0.3, 1e-12);
}

TEST(Channels, OversizedCompositionRecompressesExactly) {
  Rng rng(77004);
  // 4 x 2 and 2 x 4 raw operator products: both exceed the inline
  // capacity and must be recompressed through the Choi matrix into an
  // equivalent (trace-preserving) <= 4 operator set.
  const std::vector<std::pair<Channel, Channel>> cases = {
      {Channel::depolarizing(0.3), Channel::dephasing(0.5)},
      {Channel::amplitude_damping(0.2), Channel::depolarizing(0.4)},
      {Channel::depolarizing(0.25),
       Channel::pauli_channel(0.6, 0.2, 0.15, 0.05)},
  };
  for (const auto& [outer, inner] : cases) {
    const Channel composed = outer.after(inner);
    EXPECT_LE(composed.kraus().size(), Channel::kMaxKraus);
    EXPECT_TRUE(composed.is_trace_preserving(1e-9));
    for (int side : {0, 1}) {
      for (int i = 0; i < 5; ++i) {
        const Mat4 rho = random_density(rng);
        const Mat4 seq =
            outer.apply_to_side(inner.apply_to_side(rho, side), side);
        const Mat4 got = composed.apply_to_side(rho, side);
        EXPECT_TRUE(got.approx_equal(seq, 1e-9));
      }
    }
  }
  // Pauli-mix metadata still composes for the oversized case.
  const Channel pp = Channel::depolarizing(0.3).after(Channel::dephasing(0.5));
  ASSERT_TRUE(pp.is_pauli_mix());
  double sum = 0.0;
  for (double q : pp.pauli_delta_probs()) sum += q;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace qnetp::qstate
