// Representation-equivalence property suite.
//
// The dual representation promises that the Bell-diagonal fast path and
// the exact Mat4 path are interchangeable: random sequences of decay,
// Pauli-channel, correction, swap, distillation and measurement
// operations applied to a fast-path state and to its exact twin (the
// same mixture forced onto the density-matrix representation) must agree
// within 1e-9 at every step, consuming identical RNG streams. The
// fallback must trigger — and only trigger — on the operations without a
// Bell-diagonal closed form: amplitude damping (finite T1) and
// arbitrary-axis measurement.
#include <gtest/gtest.h>

#include "qbase/rng.hpp"
#include "qstate/distill.hpp"
#include "qstate/swap.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {
namespace {

using namespace qnetp::literals;

BellDiagonal random_coeffs(Rng& rng) {
  BellDiagonal c;
  double total = 0.0;
  for (double& x : c) {
    x = rng.uniform();
    total += x;
  }
  for (double& x : c) x /= total;
  return c;
}

struct Twin {
  TwoQubitState fast;
  TwoQubitState exact;

  static Twin random(Rng& rng) {
    const BellDiagonal c = random_coeffs(rng);
    Twin t{TwoQubitState::bell_diagonal(c),
           TwoQubitState(TwoQubitState::bell_diagonal(c).rho())};
    EXPECT_TRUE(t.fast.is_bell_diagonal());
    EXPECT_FALSE(t.exact.is_bell_diagonal());
    return t;
  }

  void expect_agree(const char* what, int step) const {
    for (BellIndex b : all_bell_indices()) {
      ASSERT_NEAR(fast.fidelity(b), exact.fidelity(b), 1e-9)
          << what << " diverged at step " << step << " on "
          << b.to_string();
    }
    ASSERT_TRUE(fast.rho().approx_equal(exact.rho(), 1e-9))
        << what << " density matrices diverged at step " << step;
  }
};

TEST(ReprEquivalence, RandomOperationSequencesAgree) {
  Rng seq_rng(42001);
  for (int trial = 0; trial < 60; ++trial) {
    Twin t = Twin::random(seq_rng);
    for (int step = 0; step < 25; ++step) {
      const int op = static_cast<int>(seq_rng.uniform_int(6));
      const int side = static_cast<int>(seq_rng.uniform_int(2));
      switch (op) {
        case 0: {  // pure-dephasing memory decay (T1 = inf)
          const MemoryDecay decay{Duration::max(),
                                  Duration::seconds(seq_rng.uniform(0.5, 5))};
          const Duration dt = Duration::ms(seq_rng.uniform(0.1, 400));
          t.fast.apply_decay(side, decay.params_for(dt));
          t.exact.apply_channel(side, decay.for_interval(dt));
          t.expect_agree("dephasing decay", step);
          break;
        }
        case 1: {  // random Pauli channel
          double p[4];
          double total = 0.0;
          for (double& x : p) {
            x = seq_rng.uniform();
            total += x;
          }
          for (double& x : p) x /= total;
          const Channel ch = Channel::pauli_channel(p[0], p[1], p[2], p[3]);
          t.fast.apply_channel(side, ch);
          t.exact.apply_channel(side, ch);
          t.expect_agree("pauli channel", step);
          break;
        }
        case 2: {  // frame correction
          const BellIndex from{
              static_cast<std::uint8_t>(seq_rng.uniform_int(4))};
          const BellIndex to{static_cast<std::uint8_t>(seq_rng.uniform_int(4))};
          t.fast.apply_correction(side, from, to);
          t.exact.apply_correction(side, from, to);
          t.expect_agree("correction", step);
          break;
        }
        case 3: {  // entanglement swap with a fresh random pair
          Twin other = Twin::random(seq_rng);
          SwapNoise noise;
          noise.gate_depolarizing = seq_rng.uniform(0.0, 0.1);
          noise.readout_flip_prob = seq_rng.uniform(0.0, 0.05);
          const std::uint64_t seed = seq_rng.next();
          Rng rng_fast(seed);
          Rng rng_exact(seed);
          const SwapOutcome of =
              entanglement_swap(t.fast, other.fast, noise, rng_fast);
          const SwapOutcome oe =
              entanglement_swap(t.exact, other.exact, noise, rng_exact);
          ASSERT_EQ(of.true_outcome, oe.true_outcome) << "step " << step;
          ASSERT_EQ(of.announced_outcome, oe.announced_outcome);
          ASSERT_NEAR(of.probability, oe.probability, 1e-9);
          t.fast = of.state;
          // Re-twin the exact branch so it stays on the Mat4 path.
          t.exact = TwoQubitState(oe.state.rho());
          t.expect_agree("swap", step);
          break;
        }
        case 4: {  // DEJMPS round with a fresh random pair
          Twin other = Twin::random(seq_rng);
          const double gate = seq_rng.uniform(0.0, 0.05);
          const std::uint64_t seed = seq_rng.next();
          Rng rng_fast(seed);
          Rng rng_exact(seed);
          const DistillResult rf = dejmps(t.fast, other.fast, gate, rng_fast);
          const DistillResult re =
              dejmps(t.exact, other.exact, gate, rng_exact);
          ASSERT_EQ(rf.success, re.success) << "step " << step;
          ASSERT_NEAR(rf.success_probability, re.success_probability, 1e-9);
          if (rf.success) {
            t.fast = rf.state;
            t.exact = TwoQubitState(re.state.rho());
            t.expect_agree("distill", step);
          } else {
            t = Twin::random(seq_rng);
          }
          break;
        }
        case 5: {  // Pauli-basis measurement of both qubits (terminal)
          const Basis basis =
              static_cast<Basis>(seq_rng.uniform_int(3));
          const std::uint64_t seed = seq_rng.next();
          Rng rng_fast(seed);
          Rng rng_exact(seed);
          const auto mf = t.fast.measure_both(basis, basis, rng_fast);
          const auto me = t.exact.measure_both(basis, basis, rng_exact);
          ASSERT_EQ(mf, me) << "step " << step;
          t.expect_agree("measurement", step);
          t = Twin::random(seq_rng);  // pair consumed; start fresh
          break;
        }
      }
    }
  }
}

TEST(ReprEquivalence, DecayWithFiniteT1AgreesAndTriggersFallback) {
  Rng rng(42002);
  for (int trial = 0; trial < 40; ++trial) {
    Twin t = Twin::random(rng);
    const MemoryDecay decay{Duration::seconds(rng.uniform(1.0, 10.0)),
                            Duration::seconds(rng.uniform(0.5, 1.5))};
    const Duration dt = Duration::ms(rng.uniform(1.0, 2000.0));
    const int side = static_cast<int>(rng.uniform_int(2));

    ASSERT_TRUE(t.fast.is_bell_diagonal());
    t.fast.apply_decay(side, decay.params_for(dt));
    t.exact.apply_channel(side, decay.for_interval(dt));
    // Amplitude damping has no Bell-diagonal closed form: the fast path
    // must have fallen back to the exact representation, loss-free.
    EXPECT_FALSE(t.fast.is_bell_diagonal());
    t.expect_agree("finite-T1 decay", trial);
  }
}

TEST(ReprEquivalence, ArbitraryAxisMeasurementTriggersFallback) {
  Rng rng(42003);
  TwoQubitState s = TwoQubitState::werner(0.9, BellIndex::phi_plus());
  ASSERT_TRUE(s.is_bell_diagonal());
  const BlochAxis tilted = BlochAxis::xz_plane(0.7);
  s.measure_both_along(tilted, tilted, rng);
  EXPECT_FALSE(s.is_bell_diagonal());
}

TEST(ReprEquivalence, BellDiagonalPreservingOpsStayOnFastPath) {
  TwoQubitState s = TwoQubitState::werner(0.85, BellIndex::psi_plus());
  s.apply_channel(0, Channel::depolarizing(0.1));
  s.apply_channel(1, Channel::dephasing(0.2));
  s.apply_channel(0, Channel::bit_flip(0.05));
  s.apply_correction(1, BellIndex::psi_plus(), BellIndex::phi_plus());
  s.apply_dephasing(0, 0.3);
  const MemoryDecay pure_dephasing{Duration::max(), 2_s};
  s.apply_decay(1, pure_dephasing.params_for(10_ms));
  EXPECT_TRUE(s.is_bell_diagonal());
  // Reading the density matrix must not change the representation.
  EXPECT_NEAR(s.rho().trace().real(), 1.0, 1e-12);
  EXPECT_TRUE(s.is_bell_diagonal());
  // A non-Pauli unitary has no closed form and demotes.
  s.apply_pauli(0, Mat2{Cplx{0.8, 0}, Cplx{-0.6, 0}, Cplx{0.6, 0},
                        Cplx{0.8, 0}});
  EXPECT_FALSE(s.is_bell_diagonal());
}

}  // namespace
}  // namespace qnetp::qstate
