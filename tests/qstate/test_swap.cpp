#include "qstate/swap.hpp"

#include <gtest/gtest.h>

#include "qbase/stats.hpp"
#include "qstate/analytic.hpp"

namespace qnetp::qstate {
namespace {

TEST(Swap, PureBellInputsFollowXorAlgebra) {
  // Property: swapping |B_a> and |B_b> with outcome m yields |B_{a^b^m}>.
  Rng rng(1);
  for (BellIndex a : all_bell_indices()) {
    for (BellIndex b : all_bell_indices()) {
      for (int trial = 0; trial < 16; ++trial) {
        const auto out = entanglement_swap(TwoQubitState::bell(a),
                                           TwoQubitState::bell(b),
                                           SwapNoise::ideal(), rng);
        const BellIndex expected = a ^ b ^ out.true_outcome;
        EXPECT_NEAR(out.state.fidelity(expected), 1.0, 1e-9)
            << a.to_string() << " x " << b.to_string() << " -> outcome "
            << out.true_outcome.to_string();
        EXPECT_EQ(out.announced_outcome, out.true_outcome);  // no noise
      }
    }
  }
}

TEST(Swap, OutcomesUniformForPureBellInputs) {
  Rng rng(2);
  int counts[4] = {0, 0, 0, 0};
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto out = entanglement_swap(
        TwoQubitState::bell(BellIndex::phi_plus()),
        TwoQubitState::bell(BellIndex::phi_plus()), SwapNoise::ideal(), rng);
    counts[out.true_outcome.code()]++;
    EXPECT_NEAR(out.probability, 0.25, 1e-9);
  }
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(static_cast<double>(counts[c]) / n, 0.25, 0.03);
}

TEST(Swap, WernerInputsMatchAnalyticFormula) {
  Rng rng(3);
  for (double f1 : {0.7, 0.85, 0.95}) {
    for (double f2 : {0.6, 0.9}) {
      RunningStats fid;
      for (int i = 0; i < 64; ++i) {
        const auto out = entanglement_swap(
            TwoQubitState::werner(f1, BellIndex::phi_plus()),
            TwoQubitState::werner(f2, BellIndex::phi_plus()),
            SwapNoise::ideal(), rng);
        const BellIndex expected =
            BellIndex::phi_plus() ^ BellIndex::phi_plus() ^ out.true_outcome;
        fid.add(out.state.fidelity(expected));
      }
      EXPECT_NEAR(fid.mean(), werner_swap_fidelity(f1, f2), 1e-6)
          << "f1=" << f1 << " f2=" << f2;
    }
  }
}

TEST(Swap, OutputIsValidDensityMatrix) {
  Rng rng(4);
  for (int i = 0; i < 32; ++i) {
    SwapNoise noise;
    noise.gate_depolarizing = 0.05;
    const auto out = entanglement_swap(
        TwoQubitState::werner(0.9, BellIndex::psi_plus()),
        TwoQubitState::werner(0.8, BellIndex::phi_minus()), noise, rng);
    EXPECT_TRUE(out.state.valid_density(1e-6));
  }
}

TEST(Swap, GateNoiseLowersFidelity) {
  Rng rng(5);
  RunningStats noiseless, noisy;
  for (int i = 0; i < 128; ++i) {
    const auto clean = entanglement_swap(
        TwoQubitState::bell(BellIndex::phi_plus()),
        TwoQubitState::bell(BellIndex::phi_plus()), SwapNoise::ideal(), rng);
    noiseless.add(clean.state.fidelity(clean.true_outcome));
    SwapNoise n;
    n.gate_depolarizing = 0.1;
    const auto dirty = entanglement_swap(
        TwoQubitState::bell(BellIndex::phi_plus()),
        TwoQubitState::bell(BellIndex::phi_plus()), n, rng);
    noisy.add(dirty.state.fidelity(dirty.true_outcome));
  }
  EXPECT_NEAR(noiseless.mean(), 1.0, 1e-9);
  EXPECT_LT(noisy.mean(), 0.95);
  EXPECT_GT(noisy.mean(), 0.75);
}

TEST(Swap, ReadoutErrorFlipsAnnouncementNotState) {
  Rng rng(6);
  SwapNoise n;
  n.readout_flip_prob = 0.5;
  int mismatches = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const auto out = entanglement_swap(
        TwoQubitState::bell(BellIndex::phi_plus()),
        TwoQubitState::bell(BellIndex::phi_plus()), n, rng);
    // The physical state still matches the TRUE outcome exactly.
    EXPECT_NEAR(out.state.fidelity(out.true_outcome), 1.0, 1e-9);
    if (out.announced_outcome != out.true_outcome) ++mismatches;
  }
  // With q=0.5 per bit, 3/4 of announcements differ.
  EXPECT_NEAR(static_cast<double>(mismatches) / trials, 0.75, 0.07);
}

TEST(Swap, ChainOfSwapsTracksBellFrame) {
  // Simulate a 4-link chain: swap pairwise and track the frame by XOR;
  // final state must match the tracked Bell index.
  Rng rng(7);
  for (int trial = 0; trial < 32; ++trial) {
    TwoQubitState pairs[4] = {
        TwoQubitState::bell(BellIndex::phi_plus()),
        TwoQubitState::bell(BellIndex::psi_plus()),
        TwoQubitState::bell(BellIndex::phi_minus()),
        TwoQubitState::bell(BellIndex::psi_minus()),
    };
    BellIndex tracked = BellIndex::phi_plus() ^ BellIndex::psi_plus() ^
                        BellIndex::phi_minus() ^ BellIndex::psi_minus();
    TwoQubitState acc = pairs[0];
    for (int k = 1; k < 4; ++k) {
      const auto out =
          entanglement_swap(acc, pairs[k], SwapNoise::ideal(), rng);
      tracked = tracked ^ out.true_outcome;
      acc = out.state;
    }
    EXPECT_NEAR(acc.fidelity(tracked), 1.0, 1e-9);
  }
}

TEST(Swap, MixedStateInputsGiveHalfFidelity) {
  Rng rng(8);
  const auto out = entanglement_swap(
      TwoQubitState::maximally_mixed(),
      TwoQubitState::bell(BellIndex::phi_plus()), SwapNoise::ideal(), rng);
  // Swapping junk with anything yields junk.
  for (BellIndex b : all_bell_indices())
    EXPECT_NEAR(out.state.fidelity(b), 0.25, 1e-9);
}

}  // namespace
}  // namespace qnetp::qstate
