// Parameterized property sweeps binding the exact density-matrix swap to
// the analytic algebra the control plane plans with.
#include <gtest/gtest.h>

#include <tuple>

#include "qbase/stats.hpp"
#include "qhw/photonic_link.hpp"
#include "qstate/analytic.hpp"
#include "qstate/swap.hpp"

namespace qnetp::qstate {
namespace {

// (f1, f2, gate_depolarizing)
using SwapCase = std::tuple<double, double, double>;

class SwapNoiseSweep : public ::testing::TestWithParam<SwapCase> {};

TEST_P(SwapNoiseSweep, MeanFidelityMatchesAnalyticPrediction) {
  const auto [f1, f2, gate] = GetParam();
  Rng rng(42);
  RunningStats fid;
  for (int i = 0; i < 96; ++i) {
    SwapNoise noise;
    noise.gate_depolarizing = gate;
    const auto out = entanglement_swap(
        TwoQubitState::werner(f1, BellIndex::phi_plus()),
        TwoQubitState::werner(f2, BellIndex::phi_plus()), noise, rng);
    const BellIndex expected = out.true_outcome;  // phi+^phi+ = identity
    fid.add(out.state.fidelity(expected));
  }
  // Analytic: depolarize each input once (the implementation applies the
  // channel to one qubit of each pair), then the perfect-swap formula.
  const double predicted = werner_swap_fidelity(
      werner_after_depolarizing(f1, gate),
      werner_after_depolarizing(f2, gate));
  EXPECT_NEAR(fid.mean(), predicted, 0.015)
      << "f1=" << f1 << " f2=" << f2 << " gate=" << gate;
}

TEST_P(SwapNoiseSweep, OutputAlwaysPhysical) {
  const auto [f1, f2, gate] = GetParam();
  Rng rng(77);
  SwapNoise noise;
  noise.gate_depolarizing = gate;
  noise.readout_flip_prob = 0.01;
  for (int i = 0; i < 16; ++i) {
    const auto out = entanglement_swap(
        TwoQubitState::werner(f1, BellIndex::psi_plus()),
        TwoQubitState::werner(f2, BellIndex::phi_minus()), noise, rng);
    EXPECT_TRUE(out.state.valid_density(1e-6));
    EXPECT_GT(out.probability, 0.0);
    EXPECT_LE(out.probability, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FidelityGateGrid, SwapNoiseSweep,
    ::testing::Combine(::testing::Values(0.7, 0.85, 0.95, 1.0),
                       ::testing::Values(0.6, 0.9, 1.0),
                       ::testing::Values(0.0, 0.01, 0.05)));

// Photonic link properties across fibre lengths and both schemes.
using LinkCase = std::tuple<double, qhw::HeraldScheme>;

class LinkSweep : public ::testing::TestWithParam<LinkCase> {};

TEST_P(LinkSweep, ModelInvariantsHold) {
  const auto [length_m, scheme] = GetParam();
  const qhw::PhotonicLinkModel link(
      qhw::simulation_preset(),
      length_m > 100.0 ? qhw::FiberParams::telecom(length_m)
                       : qhw::FiberParams::lab(length_m),
      scheme);
  EXPECT_GT(link.eta(), 0.0);
  EXPECT_LE(link.eta(), 1.0);
  EXPECT_GT(link.attempt_cycle(), Duration::zero());
  // The heralded state at the optimum is physical and dominated by the
  // announced Bell state whenever the link is usable at all.
  const auto state = link.produced_state(
      scheme == qhw::HeraldScheme::single_click ? link.optimal_alpha()
                                                : 0.0);
  EXPECT_TRUE(state.valid_density(1e-7));
  if (link.max_fidelity() > 0.5) {
    EXPECT_EQ(state.best_bell().first, link.announced_bell());
  }
  // Quantiles are ordered and bracket the mean.
  double alpha = 0.0;
  if (link.solve_alpha(std::min(0.9, link.max_fidelity() - 0.01), &alpha)) {
    const auto q25 = link.generation_time_quantile(alpha, 0.25);
    const auto q50 = link.generation_time_quantile(alpha, 0.50);
    const auto q95 = link.generation_time_quantile(alpha, 0.95);
    EXPECT_LE(q25, q50);
    EXPECT_LE(q50, q95);
    EXPECT_LE(q50, link.mean_generation_time(alpha) * 1.01);
    EXPECT_GE(q95, link.mean_generation_time(alpha));
  }
}

TEST_P(LinkSweep, LongerFibreIsSlower) {
  const auto [length_m, scheme] = GetParam();
  const auto make = [&](double len) {
    return qhw::PhotonicLinkModel(
        qhw::simulation_preset(),
        len > 100.0 ? qhw::FiberParams::telecom(len)
                    : qhw::FiberParams::lab(len),
        scheme);
  };
  const auto here = make(length_m);
  const auto longer = make(length_m * 2.0);
  EXPECT_LE(longer.eta(), here.eta());
  EXPECT_GE(longer.attempt_cycle(), here.attempt_cycle());
}

INSTANTIATE_TEST_SUITE_P(
    LengthSchemeGrid, LinkSweep,
    ::testing::Combine(::testing::Values(2.0, 50.0, 1000.0, 25000.0),
                       ::testing::Values(qhw::HeraldScheme::single_click,
                                         qhw::HeraldScheme::double_click)));

}  // namespace
}  // namespace qnetp::qstate
