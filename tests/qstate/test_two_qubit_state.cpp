#include "qstate/two_qubit_state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbase/stats.hpp"

namespace qnetp::qstate {
namespace {

TEST(TwoQubitState, DefaultIsMaximallyMixed) {
  const TwoQubitState s;
  for (BellIndex b : all_bell_indices())
    EXPECT_NEAR(s.fidelity(b), 0.25, 1e-12);
  EXPECT_TRUE(s.valid_density());
}

TEST(TwoQubitState, BellStatesHaveUnitFidelity) {
  for (BellIndex b : all_bell_indices()) {
    const TwoQubitState s = TwoQubitState::bell(b);
    EXPECT_NEAR(s.fidelity(b), 1.0, 1e-12);
    for (BellIndex other : all_bell_indices()) {
      if (other != b) {
        EXPECT_NEAR(s.fidelity(other), 0.0, 1e-12);
      }
    }
    EXPECT_TRUE(s.valid_density());
  }
}

class WernerParam : public ::testing::TestWithParam<double> {};

TEST_P(WernerParam, WernerStateProperties) {
  const double f = GetParam();
  const TwoQubitState s = TwoQubitState::werner(f, BellIndex::psi_plus());
  EXPECT_NEAR(s.fidelity(BellIndex::psi_plus()), f, 1e-12);
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), (1 - f) / 3.0, 1e-12);
  EXPECT_TRUE(s.valid_density());
  const auto [best, bf] = s.best_bell();
  if (f > 0.25) {
    EXPECT_EQ(best, BellIndex::psi_plus());
    EXPECT_NEAR(bf, f, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(FidelitySweep, WernerParam,
                         ::testing::Values(0.3, 0.5, 0.7, 0.85, 0.95, 1.0));

TEST(TwoQubitState, ComputationalStates) {
  const TwoQubitState s = TwoQubitState::computational(1, 0);
  // |10> has overlap 1/2 with Psi+ and Psi-.
  EXPECT_NEAR(s.fidelity(BellIndex::psi_plus()), 0.5, 1e-12);
  EXPECT_NEAR(s.fidelity(BellIndex::psi_minus()), 0.5, 1e-12);
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), 0.0, 1e-12);
}

TEST(TwoQubitState, PauliCorrectionRestoresFrame) {
  for (BellIndex from : all_bell_indices()) {
    for (BellIndex to : all_bell_indices()) {
      TwoQubitState s = TwoQubitState::bell(from);
      s.apply_correction(0, from, to);
      EXPECT_NEAR(s.fidelity(to), 1.0, 1e-12)
          << from.to_string() << "->" << to.to_string();
    }
  }
}

TEST(TwoQubitState, CorrectionOnRightSideAlsoWorks) {
  // For Bell states, correcting on either qubit moves the frame, though
  // the Pauli needed on the right side can differ by a sign for Y-type
  // corrections. Verify the frame lands where expected for X and Z.
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  s.apply_pauli(1, pauli_x());
  EXPECT_NEAR(s.fidelity(BellIndex::psi_plus()), 1.0, 1e-12);
  TwoQubitState s2 = TwoQubitState::bell(BellIndex::phi_plus());
  s2.apply_pauli(1, pauli_z());
  EXPECT_NEAR(s2.fidelity(BellIndex::phi_minus()), 1.0, 1e-12);
}

TEST(Measurement, ZBasisOnBellPairIsCorrelated) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
    const auto [a, b] = s.measure_both(Basis::z, Basis::z, rng);
    EXPECT_EQ(a, b);  // Phi+ is perfectly correlated in Z
  }
  for (int trial = 0; trial < 200; ++trial) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::psi_plus());
    const auto [a, b] = s.measure_both(Basis::z, Basis::z, rng);
    EXPECT_NE(a, b);  // Psi+ anti-correlated in Z
  }
}

TEST(Measurement, XBasisCorrelations) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
    const auto [a, b] = s.measure_both(Basis::x, Basis::x, rng);
    EXPECT_EQ(a, b);  // Phi+ correlated in X
  }
  for (int trial = 0; trial < 200; ++trial) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::phi_minus());
    const auto [a, b] = s.measure_both(Basis::x, Basis::x, rng);
    EXPECT_NE(a, b);  // Phi- anti-correlated in X
  }
}

TEST(Measurement, OutcomeFrequenciesUniformForBell) {
  Rng rng(11);
  int zeros = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
    Mat2 partner;
    const int o = s.measure_side(0, Basis::z, rng, &partner);
    zeros += (o == 0) ? 1 : 0;
    // Partner collapses to the same computational state.
    EXPECT_NEAR(partner(o, o).real(), 1.0, 1e-9);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.5, 0.05);
}

TEST(Measurement, CollapseIsConsistentOnSecondMeasurement) {
  Rng rng(13);
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  const int first = s.measure_side(0, Basis::z, rng);
  // After measuring side 0 in Z, side 1 must give the same outcome with
  // certainty.
  const int second = s.measure_side(1, Basis::z, rng);
  EXPECT_EQ(first, second);
}

TEST(Measurement, CorrelatorValues) {
  const TwoQubitState phi_plus = TwoQubitState::bell(BellIndex::phi_plus());
  EXPECT_NEAR(phi_plus.correlator(Basis::z), 1.0, 1e-12);
  EXPECT_NEAR(phi_plus.correlator(Basis::x), 1.0, 1e-12);
  EXPECT_NEAR(phi_plus.correlator(Basis::y), -1.0, 1e-12);
  const TwoQubitState psi_minus = TwoQubitState::bell(BellIndex::psi_minus());
  EXPECT_NEAR(psi_minus.correlator(Basis::z), -1.0, 1e-12);
  EXPECT_NEAR(psi_minus.correlator(Basis::x), -1.0, 1e-12);
  EXPECT_NEAR(psi_minus.correlator(Basis::y), -1.0, 1e-12);
}

TEST(Measurement, WernerCorrelatorScalesWithFidelity) {
  const double f = 0.85;
  const TwoQubitState s = TwoQubitState::werner(f, BellIndex::phi_plus());
  // For Werner: <ZZ> = (4F-1)/3.
  EXPECT_NEAR(s.correlator(Basis::z), (4 * f - 1) / 3.0, 1e-12);
}

TEST(Renormalize, FixesDriftedTrace) {
  Mat4 rho = bell_projector(BellIndex::phi_plus()) * Cplx{0.98, 0};
  TwoQubitState s(rho);
  s.renormalize();
  EXPECT_NEAR(s.rho().trace().real(), 1.0, 1e-12);
  EXPECT_NEAR(s.fidelity(BellIndex::phi_plus()), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Teleportation.
// ---------------------------------------------------------------------------

Mat2 pure_state_dm(Cplx a, Cplx b) {
  // |psi> = a|0> + b|1>
  return Mat2{a * std::conj(a), a * std::conj(b), b * std::conj(a),
              b * std::conj(b)};
}

TEST(Teleport, PerfectResourceReproducesInput) {
  Rng rng(17);
  const Mat2 psi = pure_state_dm(Cplx{0.6, 0}, Cplx{0, 0.8});
  for (int i = 0; i < 50; ++i) {
    const auto [out, m] =
        teleport(psi, TwoQubitState::bell(BellIndex::phi_plus()), rng);
    EXPECT_TRUE(out.approx_equal(psi, 1e-9)) << "outcome " << m.to_string();
  }
}

TEST(Teleport, AllFourOutcomesOccur) {
  Rng rng(19);
  const Mat2 psi = pure_state_dm(Cplx{1 / std::sqrt(2.0), 0},
                                 Cplx{0.5, 0.5});
  int seen[4] = {0, 0, 0, 0};
  for (int i = 0; i < 400; ++i) {
    const auto [out, m] =
        teleport(psi, TwoQubitState::bell(BellIndex::phi_plus()), rng);
    seen[m.code()]++;
  }
  for (int c = 0; c < 4; ++c) EXPECT_GT(seen[c], 50);
}

TEST(Teleport, WernerResourceDegradesOutput) {
  Rng rng(23);
  const Mat2 psi = pure_state_dm(Cplx{1, 0}, Cplx{0, 0});
  const double f = 0.75;
  RunningStats fid;
  for (int i = 0; i < 200; ++i) {
    const auto [out, m] =
        teleport(psi, TwoQubitState::werner(f, BellIndex::phi_plus()), rng);
    // Output fidelity <0|out|0>.
    fid.add(out(0, 0).real());
  }
  // Teleportation fidelity through Werner F: (2F+1)/3 on average.
  EXPECT_NEAR(fid.mean(), (2 * f + 1) / 3.0, 0.02);
}

TEST(Teleport, MixedMaximallyMixedResourceGivesMixedOutput) {
  Rng rng(29);
  const Mat2 psi = pure_state_dm(Cplx{1, 0}, Cplx{0, 0});
  const auto [out, m] = teleport(psi, TwoQubitState::maximally_mixed(), rng);
  EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-9);
  EXPECT_NEAR(out(1, 1).real(), 0.5, 1e-9);
}

}  // namespace
}  // namespace qnetp::qstate
