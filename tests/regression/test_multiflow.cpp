// Tier-2 multiflow digest-stability smoke.
//
// Extends the replay-guard determinism contract to the arbitrary-topology
// scenario subsystem: multiflow trials (TopologySpec-built fabrics, the
// admission-aware controller, concurrent circuits) must replay
// bit-identically for a fixed seed and aggregate bit-identically across
// worker counts. Runs on the grid and on the per-trial-seeded Waxman
// family so both deterministic construction paths are covered.
//
// QNETP_REGRESSION_QUICK=1 (CI smoke) halves the trial counts.
#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/summary.hpp"

namespace qnetp::exp {
namespace {

bool quick_mode() {
  const char* v = std::getenv("QNETP_REGRESSION_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

MultiflowConfig grid_config() {
  MultiflowConfig cfg;
  cfg.family = TopologyFamily::grid;
  cfg.size = 3;
  cfg.n_circuits = 2;
  cfg.pairs_per_request = 3;
  cfg.horizon = Duration::seconds(120);
  return cfg;
}

MultiflowConfig waxman_config() {
  MultiflowConfig cfg;
  cfg.family = TopologyFamily::waxman;
  cfg.size = 10;
  cfg.n_circuits = 3;
  cfg.pairs_per_request = 3;
  cfg.horizon = Duration::seconds(120);
  return cfg;
}

std::uint64_t result_digest(const TrialResult& r) {
  SummaryAccumulator acc;
  acc.add(r);
  return acc.digest();
}

TEST(MultiflowRegression, SameSeedSameExecution) {
  for (const auto& cfg : {grid_config(), waxman_config()}) {
    const TrialResult first = multiflow_trial(cfg, 0xAB5EED);
    const TrialResult second = multiflow_trial(cfg, 0xAB5EED);
    ASSERT_TRUE(first.has("events"));
    EXPECT_DOUBLE_EQ(first.scalars.at("events"),
                     second.scalars.at("events"));
    EXPECT_EQ(result_digest(first), result_digest(second))
        << to_string(cfg.family);
    EXPECT_GT(first.scalars.at("admitted"), 0.0);
    EXPECT_GT(first.scalars.at("delivered"), 0.0);
    EXPECT_DOUBLE_EQ(first.scalars.at("mismatches"), 0.0);
  }
}

TEST(MultiflowRegression, AggregatesBitIdenticalAcrossJobCounts) {
  const std::size_t trials = quick_mode() ? 3 : 6;
  for (const auto& cfg : {grid_config(), waxman_config()}) {
    auto fn = [&](const Trial& t) { return multiflow_trial(cfg, t.seed); };
    const auto serial = SummaryAccumulator::aggregate(
        TrialRunner({1, 0xF10D}).run(trials, fn));
    const auto threaded = SummaryAccumulator::aggregate(
        TrialRunner({3, 0xF10D}).run(trials, fn));
    EXPECT_EQ(serial.trials(), trials);
    EXPECT_EQ(serial.digest(), threaded.digest())
        << to_string(cfg.family)
        << ": a trial pulled randomness from outside its seed";
  }
}

TEST(MultiflowRegression, AdmissionOutcomesReplay) {
  // Guaranteed oversubscription on a ring: the admit/reject split is part
  // of the digest and must replay exactly.
  MultiflowConfig cfg;
  cfg.family = TopologyFamily::ring;
  cfg.size = 8;
  cfg.n_circuits = 4;
  cfg.pairs_per_request = 2;
  cfg.requested_eer = 30.0;  // high enough to reject some circuits
  cfg.horizon = Duration::seconds(90);
  const TrialResult a = multiflow_trial(cfg, 0x5EED01);
  const TrialResult b = multiflow_trial(cfg, 0x5EED01);
  EXPECT_EQ(result_digest(a), result_digest(b));
  EXPECT_DOUBLE_EQ(a.scalars.at("admitted") + a.scalars.at("rejected"),
                   4.0);
}

}  // namespace
}  // namespace qnetp::exp
