// Deterministic-replay guard (tier-2).
//
// The experiment runner's whole value rests on two properties:
//  1. Replaying a scenario with the same seed reproduces the exact same
//     execution — same DES event count, same physics outcomes.
//  2. Aggregates over N trials are bit-identical no matter how many
//     worker threads shard the trials.
// These tests pin both on the dumbbell scenario (the paper's Fig. 7/9
// topology). If one fails, some component pulled randomness from outside
// its trial seed (global state, address-dependent ordering, ...), and
// every statistical baseline in this suite loses its meaning.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/summary.hpp"

namespace qnetp::exp {
namespace {

LatencyThroughputConfig dumbbell_config() {
  LatencyThroughputConfig cfg;
  cfg.request_interval = Duration::ms(150);
  cfg.congested = true;  // exercises both circuits and the bottleneck
  cfg.issue_window = Duration::seconds(5);
  cfg.horizon = Duration::seconds(6);
  cfg.measure_from = Duration::seconds(2);
  cfg.measure_until = Duration::seconds(5);
  return cfg;
}

std::uint64_t result_digest(const TrialResult& r) {
  SummaryAccumulator acc;
  acc.add(r);
  return acc.digest();
}

TEST(ReplayGuard, SameSeedSameExecution) {
  const auto cfg = dumbbell_config();
  const TrialResult first = latency_throughput_trial(cfg, 0xFEED5EED);
  const TrialResult second = latency_throughput_trial(cfg, 0xFEED5EED);

  // Identical event counts (the full DES execution replayed)...
  ASSERT_TRUE(first.has("events"));
  EXPECT_DOUBLE_EQ(first.scalars.at("events"), second.scalars.at("events"));
  EXPECT_GT(first.scalars.at("events"), 1000.0);  // a real run, not a stub
  // ...and identical outcome digests (every metric and sample).
  EXPECT_EQ(result_digest(first), result_digest(second));
}

TEST(ReplayGuard, DifferentSeedsDiverge) {
  const auto cfg = dumbbell_config();
  const TrialResult a = latency_throughput_trial(cfg, 0xFEED5EED);
  const TrialResult b = latency_throughput_trial(cfg, 0xFEED5EEE);
  EXPECT_NE(result_digest(a), result_digest(b));
}

TEST(ReplayGuard, AggregatesBitIdenticalAcrossJobCounts) {
  const auto cfg = dumbbell_config();
  const std::size_t trials = 6;
  auto fn = [&](const Trial& t) {
    return latency_throughput_trial(cfg, t.seed);
  };
  const auto serial = SummaryAccumulator::aggregate(
      TrialRunner({1, 0xD0B5}).run(trials, fn));
  const auto threaded = SummaryAccumulator::aggregate(
      TrialRunner({3, 0xD0B5}).run(trials, fn));
  EXPECT_EQ(serial.trials(), trials);
  EXPECT_EQ(serial.digest(), threaded.digest())
      << "a trial pulled randomness from outside its seed";
}

}  // namespace
}  // namespace qnetp::exp
