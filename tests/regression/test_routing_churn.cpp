// Tier-2 routing-churn regression.
//
// Pins churn_trial aggregate digests for fixed seeds against baselines
// committed in tests/regression/golden/routing.txt, and asserts the
// determinism invariants behind bench/routing_churn's gates: identical
// digests across TrialRunner worker counts (--jobs) and across the
// execution-shard fold of the multi-region fabric (--shards), plus the
// per-trial cleanliness contract (ok, engine-consistent, leak-free).
//
// Environment knobs:
//  * QNETP_REGEN_GOLDEN=1 — rewrite the golden digests from this build
//    (inspect the diff, commit);
//  * QNETP_REGRESSION_QUICK=1 — CI smoke mode: trims the invariance
//    sweeps. The digest-pinned configs run identically in both modes (a
//    digest over different trials would never match), so quick mode does
//    not weaken the golden comparison.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "exp/churn.hpp"
#include "exp/runner.hpp"
#include "exp/summary.hpp"

#ifndef QNETP_GOLDEN_DIR
#error "QNETP_GOLDEN_DIR must point at tests/regression/golden"
#endif

namespace qnetp::exp {
namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool quick_mode() { return env_flag("QNETP_REGRESSION_QUICK"); }

/// Exact-match golden store: `name value` per line (16-digit hex
/// digests) — no tolerance band, digests either replay or they don't.
class RoutingGolden {
 public:
  static RoutingGolden& instance() {
    static RoutingGolden store;
    return store;
  }

  void check(const std::string& name, const std::string& value) {
    if (regen_) {
      recorded_[name] = value;
      return;
    }
    const auto it = golden_.find(name);
    ASSERT_NE(it, golden_.end())
        << "no golden value for '" << name
        << "' — run with QNETP_REGEN_GOLDEN=1 and commit the result";
    EXPECT_EQ(value, it->second)
        << "'" << name << "' no longer replays bit-identically";
  }

  void flush() {
    if (!regen_) return;
    auto merged = golden_;
    for (const auto& [name, v] : recorded_) merged[name] = v;
    const std::string path = file_path();
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "# Golden digests for the tier-2 routing-churn regression "
           "suite.\n"
        << "# Regenerate: QNETP_REGEN_GOLDEN=1 "
           "./qnetp_regression_test_routing_churn\n"
        << "# Format: <name> <value>\n";
    for (const auto& [name, v] : merged) out << name << " " << v << "\n";
  }

 private:
  RoutingGolden() : regen_(env_flag("QNETP_REGEN_GOLDEN")) {
    std::ifstream in(file_path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string name, value;
      if (ls >> name >> value) golden_[name] = value;
    }
  }

  static std::string file_path() {
    return std::string(QNETP_GOLDEN_DIR) + "/routing.txt";
  }

  bool regen_;
  std::map<std::string, std::string> golden_;
  std::map<std::string, std::string> recorded_;
};

class GoldenFlusher : public ::testing::Environment {
 public:
  void TearDown() override { RoutingGolden::instance().flush(); }
};
const auto* const kFlusher =
    ::testing::AddGlobalTestEnvironment(new GoldenFlusher);

/// Single-region grid with the full scripted fault timeline, trimmed to
/// a horizon that still covers sever + degrade + heal.
ChurnConfig grid_config() {
  ChurnConfig cfg;
  cfg.family = TopologyFamily::grid;
  cfg.size = 3;
  cfg.n_circuits = 3;
  cfg.n_guaranteed = 1;
  cfg.requested_eer = 0.5;
  cfg.horizon = Duration::seconds(16);
  cfg.events = default_churn_timeline(cfg.family, cfg.size);
  return cfg;
}

/// Four composed 2x3 grid regions (the sharded fabric): sever, degrade
/// and a flash crowd inside a short horizon.
ChurnConfig regions_config() {
  ChurnConfig cfg;
  cfg.regions = 4;
  cfg.region_rows = 2;
  cfg.region_cols = 3;
  cfg.n_circuits = 2;
  cfg.n_guaranteed = 1;
  cfg.requested_eer = 0.5;
  cfg.horizon = Duration::seconds(10);
  auto link_event = [&](ChurnEventKind kind, double at_s, std::uint64_t a,
                        std::uint64_t b) {
    ChurnEvent e;
    e.kind = kind;
    e.at = Duration::seconds(at_s);
    e.a = NodeId{a};
    e.b = NodeId{b};
    cfg.events.push_back(e);
  };
  link_event(ChurnEventKind::sever, 2.0, 1, 2);
  link_event(ChurnEventKind::degrade, 4.0, 7, 8);
  cfg.events.back().cost_factor = 5.0;
  ChurnEvent crowd;
  crowd.kind = ChurnEventKind::flash_crowd;
  crowd.at = Duration::seconds(6);
  cfg.events.push_back(crowd);
  return cfg;
}

std::string digest_hex(const SummaryAccumulator& acc) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(acc.digest()));
  return buf;
}

TEST(RoutingChurnRegression, DigestMatchesGolden) {
  // Fixed trial count in BOTH modes: the digest covers every trial.
  auto& golden = RoutingGolden::instance();
  const std::map<std::string, ChurnConfig> configs = {
      {"routing.churn_grid3.digest", grid_config()},
      {"routing.churn_regions4.digest", regions_config()},
  };
  for (const auto& [name, cfg] : configs) {
    const auto results = TrialRunner({1, 0x9C0DE}).run(
        2, [&](const Trial& t) { return churn_trial(cfg, t.seed); });
    for (const auto& r : results) {
      EXPECT_DOUBLE_EQ(r.scalar_or("ok", 0.0), 1.0) << name;
      EXPECT_DOUBLE_EQ(r.scalar_or("consistency_ok", 0.0), 1.0) << name;
      EXPECT_DOUBLE_EQ(r.scalar_or("leak_free", 0.0), 1.0) << name;
      EXPECT_DOUBLE_EQ(r.scalar_or("quiescent", 0.0), 1.0) << name;
    }
    golden.check(name, digest_hex(SummaryAccumulator::aggregate(results)));
  }
}

TEST(RoutingChurnRegression, SameSeedSameExecution) {
  const ChurnConfig cfg = grid_config();
  const TrialResult a = churn_trial(cfg, 0xC0DE5EED);
  const TrialResult b = churn_trial(cfg, 0xC0DE5EED);
  auto da = SummaryAccumulator();
  da.add(a);
  auto db = SummaryAccumulator();
  db.add(b);
  EXPECT_EQ(da.digest(), db.digest());
  EXPECT_GT(a.scalars.at("delivered"), 0.0);
  EXPECT_GT(a.scalars.at("torn_down"), 0.0) << "the timeline must bite";
}

TEST(RoutingChurnRegression, AggregatesBitIdenticalAcrossJobCounts) {
  const std::size_t trials = quick_mode() ? 2 : 4;
  const ChurnConfig cfg = grid_config();
  auto fn = [&](const Trial& t) { return churn_trial(cfg, t.seed); };
  const auto serial =
      SummaryAccumulator::aggregate(TrialRunner({1, 0xF10D}).run(trials, fn));
  const auto threaded =
      SummaryAccumulator::aggregate(TrialRunner({3, 0xF10D}).run(trials, fn));
  EXPECT_EQ(serial.digest(), threaded.digest())
      << "a churn trial pulled randomness from outside its seed";
}

TEST(RoutingChurnRegression, AggregatesBitIdenticalAcrossShardCounts) {
  const std::size_t trials = quick_mode() ? 1 : 2;
  ChurnConfig cfg = regions_config();
  std::uint64_t reference = 0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    cfg.shards = shards;
    const auto acc = SummaryAccumulator::aggregate(
        TrialRunner({1, 0x5AAD}).run(trials, [&](const Trial& t) {
          return churn_trial(cfg, t.seed);
        }));
    if (shards == 1) {
      reference = acc.digest();
    } else {
      EXPECT_EQ(acc.digest(), reference)
          << "the shard fold leaked into trial results at shards="
          << shards;
    }
  }
}

}  // namespace
}  // namespace qnetp::exp
