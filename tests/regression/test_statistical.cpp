// Tier-2 statistical regression suite.
//
// Runs small multi-trial sweeps of the paper's chain and dumbbell
// scenarios through the TrialRunner and asserts two kinds of
// distributional invariants:
//  * SHAPE: qualitative structure the paper predicts (Fig. 5 link-CDF
//    shape, Fig. 9 latency knee under load, Fig. 10 fidelity-vs-cutoff
//    monotonicity) — these hold for any healthy build;
//  * BASELINE: measured means stay inside tolerance bands around golden
//    values committed in tests/regression/golden/statistical.txt.
//
// Environment knobs:
//  * QNETP_REGEN_GOLDEN=1  — rewrite the golden file from this build's
//    measurements (run the full suite, inspect the diff, commit);
//  * QNETP_REGRESSION_QUICK=1 — CI smoke mode: fewer trials per sweep
//    and 2.5x tolerance bands (catches gross regressions fast).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/summary.hpp"

#ifndef QNETP_GOLDEN_DIR
#error "QNETP_GOLDEN_DIR must point at tests/regression/golden"
#endif

namespace qnetp::exp {
namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool quick_mode() { return env_flag("QNETP_REGRESSION_QUICK"); }

std::size_t trials(std::size_t full) {
  const std::size_t quick = full / 2;
  return quick_mode() ? (quick > 0 ? quick : 1) : full;
}

/// Golden baseline store: `name value abs_tol` per line. In regen mode
/// every check records instead of asserting, and the suite-level
/// Environment rewrites the file at the end of the run.
class GoldenStore {
 public:
  static GoldenStore& instance() {
    static GoldenStore store;
    return store;
  }

  /// Compare `measured` against the committed baseline (or record it
  /// when regenerating; `tol` becomes the committed tolerance band).
  void check(const std::string& name, double measured, double tol) {
    if (regen_) {
      recorded_[name] = {measured, tol};
      return;
    }
    const auto it = golden_.find(name);
    ASSERT_NE(it, golden_.end())
        << "no golden baseline for '" << name
        << "' — run with QNETP_REGEN_GOLDEN=1 and commit the result";
    const double band =
        it->second.second * (quick_mode() ? 2.5 : 1.0);
    EXPECT_NEAR(measured, it->second.first, band)
        << "metric '" << name << "' drifted from its golden baseline";
  }

  bool regen() const { return regen_; }

  void flush() {
    if (!regen_) return;
    if (quick_mode()) {
      ADD_FAILURE() << "refusing to regenerate golden baselines in quick "
                       "mode: half-trial measurements would be committed "
                       "as full-run baselines. Unset "
                       "QNETP_REGRESSION_QUICK and re-run.";
      return;
    }
    // Merge over the existing file so a filtered run (--gtest_filter)
    // only updates the baselines it actually re-measured.
    auto merged = golden_;
    for (const auto& [name, vt] : recorded_) merged[name] = vt;
    const std::string path = file_path();
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "# Golden baselines for the tier-2 statistical regression "
           "suite.\n"
        << "# Regenerate: QNETP_REGEN_GOLDEN=1 ./qnetp_regression_test_"
           "statistical\n"
        << "# Format: <metric> <value> <abs_tolerance>\n";
    for (const auto& [name, vt] : merged) {
      char line[160];
      std::snprintf(line, sizeof line, "%s %.10g %.10g\n", name.c_str(),
                    vt.first, vt.second);
      out << line;
    }
  }

 private:
  GoldenStore() : regen_(env_flag("QNETP_REGEN_GOLDEN")) {
    std::ifstream in(file_path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string name;
      double value = 0.0, tol = 0.0;
      if (ls >> name >> value >> tol) golden_[name] = {value, tol};
    }
  }

  static std::string file_path() {
    return std::string(QNETP_GOLDEN_DIR) + "/statistical.txt";
  }

  bool regen_;
  std::map<std::string, std::pair<double, double>> golden_;
  std::map<std::string, std::pair<double, double>> recorded_;
};

class GoldenFlusher : public ::testing::Environment {
 public:
  void TearDown() override { GoldenStore::instance().flush(); }
};
const auto* const kFlusher =
    ::testing::AddGlobalTestEnvironment(new GoldenFlusher);

// ---------------------------------------------------------------------------
// Fig. 5 — link-pair generation time CDF shape.
// ---------------------------------------------------------------------------
TEST(StatisticalRegression, Fig5LinkCdfShape) {
  LinkCdfConfig cfg;
  cfg.target_pairs = 300;
  const auto summary = SummaryAccumulator::aggregate(
      TrialRunner({1, 91001}).run(trials(4), [&](const Trial& t) {
        return link_cdf_trial(cfg, t.seed);
      }));
  const SampleSet& gen_ms = summary.pooled("gen_ms");

  // SHAPE: generation times are positive, right-skewed (mean > median),
  // and the CDF is strictly spread out (p95 well above the median) —
  // the geometric-attempts structure behind the paper's Fig. 5.
  EXPECT_GT(gen_ms.min(), 0.0);
  EXPECT_GT(gen_ms.mean(), gen_ms.median());
  EXPECT_GT(gen_ms.quantile(0.95), 2.0 * gen_ms.median());

  // BASELINE: the paper's anchors — "on average we have to wait 10 ms
  // and 95% of link-pairs are generated within 30 ms".
  auto& golden = GoldenStore::instance();
  golden.check("fig5.mean_ms", gen_ms.mean(), 1.5);
  golden.check("fig5.p95_ms", gen_ms.quantile(0.95), 6.0);
  golden.check("fig5.median_ms", gen_ms.median(), 1.5);
}

// ---------------------------------------------------------------------------
// Fig. 9 — latency knee: low offered load sits on the flat part of the
// latency curve, near-saturation load sits past the knee.
// ---------------------------------------------------------------------------
TEST(StatisticalRegression, Fig9LatencyKnee) {
  auto sweep = [&](double interval_ms) {
    LatencyThroughputConfig cfg;
    cfg.request_interval = Duration::ms(interval_ms);
    cfg.congested = false;
    cfg.issue_window = Duration::seconds(8);
    cfg.horizon = Duration::seconds(10);
    cfg.measure_from = Duration::seconds(3);
    cfg.measure_until = Duration::seconds(8);
    return SummaryAccumulator::aggregate(
        TrialRunner({1, 92001}).run(trials(4), [&](const Trial& t) {
          return latency_throughput_trial(cfg, t.seed);
        }));
  };
  const auto low_load = sweep(400.0);   // ~7.5 pairs/s demand: flat part
  const auto high_load = sweep(45.0);   // ~67 pairs/s demand: past knee

  ASSERT_TRUE(low_load.has_scalar("latency_mean"));
  ASSERT_TRUE(high_load.has_scalar("latency_mean"));
  const double lat_low = low_load.scalar("latency_mean").mean();
  const double lat_high = high_load.scalar("latency_mean").mean();
  const double tput_low = low_load.scalar("throughput").mean();
  const double tput_high = high_load.scalar("throughput").mean();

  // SHAPE: past the knee latency blows up (request queueing) while
  // throughput still scales with offered load (Fig. 9's
  // flat-then-blow-up structure). The measured jump is ~25x; 3x is the
  // regression floor.
  EXPECT_GT(tput_high, 2.0 * tput_low);
  EXPECT_GT(lat_high, 3.0 * lat_low);

  auto& golden = GoldenStore::instance();
  golden.check("fig9.tput_low", tput_low, 1.5);
  golden.check("fig9.tput_high", tput_high, 6.0);
  golden.check("fig9.latency_low_s", lat_low, 0.03);
  golden.check("fig9.latency_high_s", lat_high, 1.0);
}

// ---------------------------------------------------------------------------
// Fig. 10 — fidelity vs cutoff monotonicity on the 3-node chain.
// ---------------------------------------------------------------------------
TEST(StatisticalRegression, Fig10FidelityVsCutoffMonotonicity) {
  auto sweep = [&](double cutoff_ms) {
    CutoffSweepConfig cfg;
    cfg.cutoff = Duration::ms(cutoff_ms);
    cfg.horizon = Duration::seconds(5);
    return SummaryAccumulator::aggregate(
        TrialRunner({1, 93001}).run(trials(4), [&](const Trial& t) {
          return cutoff_sweep_trial(cfg, t.seed);
        }));
  };
  const auto tight = sweep(2.0);  // below the ~9 ms link generation time
  const auto mid = sweep(80.0);
  const auto loose = sweep(640.0);

  const double fid_tight = tight.scalar("fidelity").mean();
  const double fid_mid = mid.scalar("fidelity").mean();
  const double fid_loose = loose.scalar("fidelity").mean();
  const double tput_tight = tight.scalar("tput").mean();
  const double tput_mid = mid.scalar("tput").mean();

  // SHAPE: tighter cutoffs never deliver WORSE pairs — fidelity is
  // non-increasing in the cutoff (small statistical slack) — while
  // throughput collapses when the cutoff starves swapping, and tight
  // cutoffs generate the discard pressure.
  EXPECT_GE(fid_tight, fid_mid - 0.005);
  EXPECT_GE(fid_mid, fid_loose - 0.005);
  EXPECT_GE(fid_tight, fid_loose);  // the full sweep is strictly ordered
  EXPECT_GT(tput_mid, 2.0 * tput_tight);
  EXPECT_GT(tight.scalar("discards_per_s").mean(),
            5.0 * mid.scalar("discards_per_s").mean());

  auto& golden = GoldenStore::instance();
  golden.check("fig10.fid_tight", fid_tight, 0.01);
  golden.check("fig10.fid_loose", fid_loose, 0.01);
  golden.check("fig10.tput_tight", tput_tight, 6.0);
  golden.check("fig10.tput_mid", tput_mid, 6.0);
  golden.check("fig10.discards_tight", tight.scalar("discards_per_s").mean(),
               30.0);
}

// ---------------------------------------------------------------------------
// Dumbbell throughput sanity — the congested circuit keeps more than
// half the empty-network capacity (the Fig. 9 sharing result).
// ---------------------------------------------------------------------------
TEST(StatisticalRegression, DumbbellSharingKeepsOverHalfCapacity) {
  auto sweep = [&](bool congested) {
    LatencyThroughputConfig cfg;
    cfg.request_interval = Duration::ms(60);  // saturating offered load
    cfg.congested = congested;
    cfg.issue_window = Duration::seconds(8);
    cfg.horizon = Duration::seconds(10);
    cfg.measure_from = Duration::seconds(3);
    cfg.measure_until = Duration::seconds(8);
    return SummaryAccumulator::aggregate(
        TrialRunner({1, 94001}).run(trials(4), [&](const Trial& t) {
          return latency_throughput_trial(cfg, t.seed);
        }));
  };
  const double empty = sweep(false).scalar("throughput").mean();
  const double shared = sweep(true).scalar("throughput").mean();

  EXPECT_GT(empty, 0.0);
  // Paper: "the circuit saturates at MORE than half the empty capacity"
  // because the slow bottleneck lets outer links pre-stage pairs.
  EXPECT_GT(shared, 0.5 * empty);
  EXPECT_LT(shared, empty);  // but sharing is not free

  auto& golden = GoldenStore::instance();
  golden.check("dumbbell.tput_empty", empty, 5.0);
  golden.check("dumbbell.tput_shared", shared, 5.0);
}

}  // namespace
}  // namespace qnetp::exp
