// Tier-2 open-loop traffic regression.
//
// Pins the TrafficEngine's aggregate digest (scalars + pooled latency
// reservoir) for fixed seeds against baselines committed in
// tests/regression/golden/traffic.txt, and asserts the soak invariants
// every healthy build must satisfy: flat flow-table occupancy, clean
// engine consistency checks, exact accept/shape/reject accounting, and
// bit-identical aggregation across worker counts.
//
// Environment knobs:
//  * QNETP_REGEN_GOLDEN=1 — rewrite the golden digests from this build
//    (inspect the diff, commit);
//  * QNETP_REGRESSION_QUICK=1 — CI smoke mode: trims the jobs-sweep
//    trial count. The digest-pinned configs run identically in both
//    modes (a digest over fewer trials would never match), so quick
//    mode does not weaken the golden comparison.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "exp/summary.hpp"
#include "exp/traffic.hpp"

#ifndef QNETP_GOLDEN_DIR
#error "QNETP_GOLDEN_DIR must point at tests/regression/golden"
#endif

namespace qnetp::exp {
namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool quick_mode() { return env_flag("QNETP_REGRESSION_QUICK"); }

/// Exact-match golden store: `name value` per line, values are opaque
/// strings (here: 16-digit hex digests). Unlike the statistical suite
/// there is no tolerance band — digests either replay or they don't.
class TrafficGolden {
 public:
  static TrafficGolden& instance() {
    static TrafficGolden store;
    return store;
  }

  void check(const std::string& name, const std::string& value) {
    if (regen_) {
      recorded_[name] = value;
      return;
    }
    const auto it = golden_.find(name);
    ASSERT_NE(it, golden_.end())
        << "no golden value for '" << name
        << "' — run with QNETP_REGEN_GOLDEN=1 and commit the result";
    EXPECT_EQ(value, it->second)
        << "'" << name << "' no longer replays bit-identically";
  }

  void flush() {
    if (!regen_) return;
    auto merged = golden_;
    for (const auto& [name, v] : recorded_) merged[name] = v;
    const std::string path = file_path();
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "# Golden digests for the tier-2 traffic regression suite.\n"
        << "# Regenerate: QNETP_REGEN_GOLDEN=1 "
           "./qnetp_regression_test_traffic_soak\n"
        << "# Format: <name> <value>\n";
    for (const auto& [name, v] : merged) out << name << " " << v << "\n";
  }

 private:
  TrafficGolden() : regen_(env_flag("QNETP_REGEN_GOLDEN")) {
    std::ifstream in(file_path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string name, value;
      if (ls >> name >> value) golden_[name] = value;
    }
  }

  static std::string file_path() {
    return std::string(QNETP_GOLDEN_DIR) + "/traffic.txt";
  }

  bool regen_;
  std::map<std::string, std::string> golden_;
  std::map<std::string, std::string> recorded_;
};

class GoldenFlusher : public ::testing::Environment {
 public:
  void TearDown() override { TrafficGolden::instance().flush(); }
};
const auto* const kFlusher =
    ::testing::AddGlobalTestEnvironment(new GoldenFlusher);

/// The reservoir registration must match the soak bench exactly: the
/// digest hashes the pooled reservoir channel.
SummaryAccumulator traffic_accumulator() {
  SummaryAccumulator acc;
  acc.pool_as_reservoir("latency_res_s");
  return acc;
}

TrafficConfig poisson_config() {
  TrafficConfig cfg;
  cfg.family = TopologyFamily::grid;
  cfg.size = 3;
  cfg.n_circuits = 2;
  cfg.arrivals.kind = ArrivalKind::poisson;
  cfg.arrivals.rate = 2.0;
  cfg.horizon = Duration::seconds(60);
  cfg.warmup = Duration::seconds(10);
  return cfg;
}

TrafficConfig mmpp_config() {
  TrafficConfig cfg;
  cfg.family = TopologyFamily::ring;
  cfg.size = 8;
  cfg.n_circuits = 2;
  cfg.arrivals.kind = ArrivalKind::mmpp;
  cfg.horizon = Duration::seconds(60);
  cfg.warmup = Duration::seconds(10);
  return cfg;
}

std::string digest_hex(const SummaryAccumulator& acc) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(acc.digest()));
  return buf;
}

TEST(TrafficRegression, DigestMatchesGolden) {
  // Fixed trial count in BOTH modes: the digest covers every trial.
  auto& golden = TrafficGolden::instance();
  const std::map<std::string, TrafficConfig> configs = {
      {"traffic.poisson_grid3.digest", poisson_config()},
      {"traffic.mmpp_ring8.digest", mmpp_config()},
  };
  for (const auto& [name, cfg] : configs) {
    auto acc = traffic_accumulator();
    for (const TrialResult& r : TrialRunner({1, 0x7EA5EED}).run(
             2, [&](const Trial& t) { return traffic_trial(cfg, t.seed); })) {
      acc.add(r);
    }
    golden.check(name, digest_hex(acc));
  }
}

TEST(TrafficRegression, SameSeedSameExecution) {
  const TrafficConfig cfg = poisson_config();
  const TrialResult a = traffic_trial(cfg, 0xAB5EED);
  const TrialResult b = traffic_trial(cfg, 0xAB5EED);
  auto da = traffic_accumulator();
  da.add(a);
  auto db = traffic_accumulator();
  db.add(b);
  EXPECT_EQ(da.digest(), db.digest());
  EXPECT_GT(a.scalars.at("offered"), 0.0);
  EXPECT_GT(a.scalars.at("completed"), 0.0);
}

TEST(TrafficRegression, AggregatesBitIdenticalAcrossJobCounts) {
  const std::size_t trials = quick_mode() ? 2 : 4;
  for (const TrafficConfig& cfg : {poisson_config(), mmpp_config()}) {
    auto fn = [&](const Trial& t) { return traffic_trial(cfg, t.seed); };
    auto serial = traffic_accumulator();
    for (const auto& r : TrialRunner({1, 0xF10D}).run(trials, fn)) {
      serial.add(r);
    }
    auto threaded = traffic_accumulator();
    for (const auto& r : TrialRunner({3, 0xF10D}).run(trials, fn)) {
      threaded.add(r);
    }
    EXPECT_EQ(serial.digest(), threaded.digest())
        << "a traffic trial pulled randomness from outside its seed";
  }
}

TEST(TrafficRegression, OccupancyFlatAndAccountingExact) {
  for (const TrafficConfig& cfg : {poisson_config(), mmpp_config()}) {
    const TrialResult r = traffic_trial(cfg, 0x50AC);
    // Soak invariants: the flow-table GC keeps occupancy trend-flat and
    // every engine's internal accounting balances.
    EXPECT_DOUBLE_EQ(r.scalars.at("occ_flat"), 1.0);
    EXPECT_DOUBLE_EQ(r.scalars.at("consistency_ok"), 1.0);
    // Offered arrivals split exactly into the three admission outcomes.
    EXPECT_DOUBLE_EQ(r.scalars.at("offered"),
                     r.scalars.at("accepted") + r.scalars.at("shaped") +
                         r.scalars.at("rejected"));
    // SLO attainment is a fraction of eligible completions.
    EXPECT_GE(r.scalars.at("slo_attainment"), 0.0);
    EXPECT_LE(r.scalars.at("slo_attainment"), 1.0);
  }
}

}  // namespace
}  // namespace qnetp::exp
